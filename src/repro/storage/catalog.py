"""Sharded PRIF archives: parallel multi-writer packing, O(1) range reads.

A *sharded archive* (format ``PRAC``, v2 of the storage layout) is a
directory of N independent PRIF shards plus a CRC-sealed manifest
catalog::

    archive/
        shard-0000.prif     ordinary PRIF files -- each one opens with
        shard-0001.prif     PrimacyFileReader, fscks, and salvages on
        ...                 its own
        catalog.prac        manifest: config + shard table + global
                            chunk table, sealed by the v2 trailer
                            (footer length + CRC-32 + "PRIE")

The catalog maps every *global* chunk index to ``(shard, offset,
length, n_values)``, so ``read_chunk(i)`` opens only the covering shard
and seeks straight to the record -- no shard footer parse, no scan.
Chunks are distributed round-robin by the writer, but readers trust
only the catalog, so a :func:`compact_archive` rewrite may re-balance
freely.

Write-side crash safety composes from the existing primitives: every
shard is staged and published through the atomic fsync+rename path, and
the catalog is sealed *last*.  A writer killed at any point leaves
either a complete archive or a directory without a catalog -- never a
catalog describing bytes that are not there.  Shards that were already
published remain individually salvageable
(:func:`repro.storage.verify.salvage_archive`).

Archives require the ``PER_CHUNK`` index policy: every record carries
its own inline index, which is what makes a record decodable straight
off a catalog seek (and movable verbatim by ``compact``).
"""

from __future__ import annotations

import io
import os
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.compressors.base import CorruptionError, TruncationError
from repro.core.idmap import IndexReusePolicy
from repro.core.primacy import (
    PrimacyCompressor,
    PrimacyConfig,
    PrimacyStats,
)
from repro.obs import metrics as _obs_metrics
from repro.obs import trace as _obs_trace
from repro.obs.runtime import STATE as _OBS_STATE
from repro.storage.format import (
    TRAILER_BYTES,
    ChunkEntry,
    checked_bytes,
    checked_uvarint,
    decode_header,
    decode_trailer,
    encode_footer,
    encode_header,
    encode_trailer,
)
from repro.storage.writer import PrimacyFileWriter
from repro.util.checksum import crc32
from repro.util.durable import AtomicFile
from repro.util.varint import encode_uvarint

__all__ = [
    "CATALOG_MAGIC",
    "CATALOG_VERSION",
    "CATALOG_NAME",
    "ShardInfo",
    "CatalogEntry",
    "ArchiveManifest",
    "shard_name",
    "encode_catalog_header",
    "decode_catalog_header",
    "encode_catalog_table",
    "decode_catalog_table",
    "encode_catalog",
    "decode_catalog",
    "read_catalog",
    "ShardedArchiveWriter",
    "ShardedArchiveReader",
    "compact_archive",
]

CATALOG_MAGIC = b"PRAC"
CATALOG_VERSION = 1

#: Filename of the manifest inside the archive directory.
CATALOG_NAME = "catalog.prac"

#: A catalog-table row is at least shard + offset + length + n_values
#: = 4 bytes; used to reject absurd chunk counts before looping.
_MIN_ENTRY_BYTES = 4


def shard_name(shard_id: int) -> str:
    """Canonical filename for shard ``shard_id`` (writer convention)."""
    return f"shard-{shard_id:04d}.prif"


@dataclass(frozen=True)
class ShardInfo:
    """One shard file as the catalog describes it."""

    name: str  # filename inside the archive directory
    file_bytes: int  # committed size, cross-checked by fsck
    n_chunks: int  # chunks the catalog places in this shard


@dataclass(frozen=True)
class CatalogEntry:
    """One global chunk: where its record lives."""

    shard: int  # index into ArchiveManifest.shards
    offset: int  # absolute byte offset of the record in the shard file
    length: int  # record length in bytes
    n_values: int  # values held by this chunk


@dataclass
class ArchiveManifest:
    """Decoded catalog: pipeline config + shard table + chunk table."""

    config: PrimacyConfig
    planned: bool = False
    shards: tuple[ShardInfo, ...] = field(default=())
    entries: tuple[CatalogEntry, ...] = field(default=())
    tail: bytes = b""
    total_bytes: int = 0

    @property
    def n_values(self) -> int:
        """Number of values covered."""
        return sum(e.n_values for e in self.entries)

    @property
    def n_chunks(self) -> int:
        """Number of global chunks."""
        return len(self.entries)


# --------------------------------------------------------------------- #
# encoding / decoding                                                    #
# --------------------------------------------------------------------- #


def encode_catalog_header(
    config: PrimacyConfig, planned: bool, shards: list[ShardInfo]
) -> bytes:
    """Serialize the catalog header (magic, config, shard table)."""
    out = bytearray()
    out += CATALOG_MAGIC
    out.append(CATALOG_VERSION)
    out.append(1 if planned else 0)
    embedded = encode_header(config, planned=planned)
    out += encode_uvarint(len(embedded))
    out += embedded
    out += encode_uvarint(len(shards))
    for shard in shards:
        name = shard.name.encode("ascii")
        out += encode_uvarint(len(name))
        out += name
        out += encode_uvarint(shard.file_bytes)
        out += encode_uvarint(shard.n_chunks)
    return bytes(out)


def decode_catalog_header(
    data: bytes,
) -> tuple[PrimacyConfig, bool, list[ShardInfo], int]:
    """Parse a catalog header; returns ``(config, planned, shards, pos)``."""
    if len(data) < 6:
        raise TruncationError(
            "PRAC header shorter than its fixed preamble",
            region="catalog-header",
            offset=len(data),
        )
    if data[:4] != CATALOG_MAGIC:
        raise CorruptionError(
            "not a PRAC catalog", region="catalog-header", offset=0
        )
    if data[4] != CATALOG_VERSION:
        raise CorruptionError(
            f"unsupported PRAC version {data[4]}",
            region="catalog-header",
            offset=4,
        )
    flags = data[5]
    if flags & ~0x01:
        raise CorruptionError(
            f"unknown PRAC header flags 0x{flags:02x}",
            region="catalog-header",
            offset=5,
        )
    planned = bool(flags & 1)
    pos = 6
    embedded_len, pos = checked_uvarint(
        data, pos, "embedded config length", "catalog-header"
    )
    embedded, pos = checked_bytes(
        data, pos, embedded_len, "embedded config", "catalog-header"
    )
    config, consumed, embedded_planned = decode_header(embedded)
    if consumed != embedded_len:
        raise CorruptionError(
            f"{embedded_len - consumed} bytes of trailing garbage in the "
            "embedded config header",
            region="catalog-header",
        )
    if embedded_planned != planned:
        raise CorruptionError(
            "catalog planned flag disagrees with the embedded config",
            region="catalog-header",
        )
    n_shards, pos = checked_uvarint(
        data, pos, "shard count", "catalog-header"
    )
    if n_shards < 1:
        raise CorruptionError(
            "catalog names zero shards", region="catalog-header"
        )
    if n_shards * 3 > len(data):
        raise CorruptionError(
            f"shard count {n_shards} cannot fit in a "
            f"{len(data)}-byte header",
            region="catalog-header",
        )
    shards: list[ShardInfo] = []
    for i in range(n_shards):
        name_len, pos = checked_uvarint(
            data, pos, f"shard {i} name length", "catalog-header"
        )
        raw_name, pos = checked_bytes(
            data, pos, name_len, f"shard {i} name", "catalog-header"
        )
        file_bytes, pos = checked_uvarint(
            data, pos, f"shard {i} file size", "catalog-header"
        )
        n_chunks, pos = checked_uvarint(
            data, pos, f"shard {i} chunk count", "catalog-header"
        )
        try:
            name = raw_name.decode("ascii")
        except UnicodeDecodeError as exc:
            raise CorruptionError(
                f"non-ASCII shard name: {exc}", region="catalog-header"
            ) from exc
        if not name or "/" in name or "\\" in name or name.startswith("."):
            # Shard names are joined onto the archive directory; a name
            # that escapes it is an attack, not a format variant.
            raise CorruptionError(
                f"unsafe shard name {name!r}", region="catalog-header"
            )
        shards.append(
            ShardInfo(name=name, file_bytes=file_bytes, n_chunks=n_chunks)
        )
    return config, planned, shards, pos


def encode_catalog_table(
    entries: list[CatalogEntry], tail: bytes, total_bytes: int
) -> bytes:
    """Serialize the global chunk table (+ tail and total length)."""
    out = bytearray()
    out += encode_uvarint(len(entries))
    for e in entries:
        out += encode_uvarint(e.shard)
        out += encode_uvarint(e.offset)
        out += encode_uvarint(e.length)
        out += encode_uvarint(e.n_values)
    out += encode_uvarint(len(tail))
    out += tail
    out += encode_uvarint(total_bytes)
    return bytes(out)


def decode_catalog_table(
    table: bytes,
) -> tuple[list[CatalogEntry], bytes, int]:
    """Parse the chunk table; returns ``(entries, tail, total_bytes)``."""
    pos = 0
    n_entries, pos = checked_uvarint(table, pos, "chunk count", "catalog")
    if n_entries * _MIN_ENTRY_BYTES > len(table):
        raise CorruptionError(
            f"chunk count {n_entries} cannot fit in a "
            f"{len(table)}-byte catalog table",
            region="catalog",
            offset=0,
        )
    entries: list[CatalogEntry] = []
    for i in range(n_entries):
        shard, pos = checked_uvarint(table, pos, f"chunk {i} shard", "catalog")
        offset, pos = checked_uvarint(
            table, pos, f"chunk {i} offset", "catalog"
        )
        length, pos = checked_uvarint(
            table, pos, f"chunk {i} length", "catalog"
        )
        n_values, pos = checked_uvarint(
            table, pos, f"chunk {i} value count", "catalog"
        )
        if length < 1:
            raise CorruptionError(
                f"chunk {i} has zero-length record", region="catalog"
            )
        if n_values < 1:
            raise CorruptionError(
                f"chunk {i} covers zero values", region="catalog"
            )
        entries.append(
            CatalogEntry(
                shard=shard, offset=offset, length=length, n_values=n_values
            )
        )
    tail_len, pos = checked_uvarint(table, pos, "tail length", "catalog")
    tail, pos = checked_bytes(table, pos, tail_len, "catalog tail", "catalog")
    total_bytes, pos = checked_uvarint(table, pos, "total length", "catalog")
    if pos != len(table):
        raise CorruptionError(
            f"{len(table) - pos} bytes of trailing garbage in PRAC table",
            region="catalog",
            offset=pos,
        )
    return entries, tail, total_bytes


def encode_catalog(manifest: ArchiveManifest) -> bytes:
    """Serialize a complete catalog file (header + table + trailer)."""
    header = encode_catalog_header(
        manifest.config, manifest.planned, list(manifest.shards)
    )
    table = encode_catalog_table(
        list(manifest.entries), manifest.tail, manifest.total_bytes
    )
    return header + table + encode_trailer(header, table)


def decode_catalog(data: bytes) -> ArchiveManifest:
    """Parse and validate a complete catalog file."""
    if len(data) < TRAILER_BYTES + 6:
        raise TruncationError(
            "file too small to be a PRAC catalog",
            region="catalog-trailer",
            offset=len(data),
        )
    table_len, metadata_crc = decode_trailer(data[-TRAILER_BYTES:])
    header_len = len(data) - TRAILER_BYTES - table_len
    if header_len < 6:
        raise CorruptionError(
            f"PRAC table length {table_len} exceeds the file",
            region="catalog-trailer",
        )
    header = bytes(data[:header_len])
    table = bytes(data[header_len : header_len + table_len])
    if crc32(table, value=crc32(header)) != metadata_crc:
        raise CorruptionError(
            "PRAC catalog checksum mismatch (header or table corrupt)",
            region="catalog",
        )
    config, planned, shards, pos = decode_catalog_header(header)
    if pos != header_len:
        raise CorruptionError(
            f"{header_len - pos} bytes of trailing garbage in PRAC header",
            region="catalog-header",
            offset=pos,
        )
    entries, tail, total_bytes = decode_catalog_table(table)
    manifest = ArchiveManifest(
        config=config,
        planned=planned,
        shards=tuple(shards),
        entries=tuple(entries),
        tail=tail,
        total_bytes=total_bytes,
    )
    _validate_manifest(manifest)
    return manifest


def _validate_manifest(manifest: ArchiveManifest) -> None:
    """Cross-check the chunk table against the shard table."""
    if manifest.config.index_policy is not IndexReusePolicy.PER_CHUNK:
        raise CorruptionError(
            "sharded archives require the per-chunk index policy "
            f"(catalog says {manifest.config.index_policy.value!r})",
            region="catalog-header",
        )
    per_shard_count = [0] * len(manifest.shards)
    per_shard_end = [0] * len(manifest.shards)
    for i, e in enumerate(manifest.entries):
        if e.shard >= len(manifest.shards):
            raise CorruptionError(
                f"chunk {i} names shard {e.shard} but the catalog has "
                f"{len(manifest.shards)}",
                region="catalog",
            )
        if e.offset < per_shard_end[e.shard]:
            raise CorruptionError(
                f"chunk {i} overlaps the previous chunk in shard {e.shard}",
                region="catalog",
            )
        end = e.offset + e.length
        if end > manifest.shards[e.shard].file_bytes:
            raise CorruptionError(
                f"chunk {i} extends past the end of shard {e.shard} "
                f"(ends {end}, shard is "
                f"{manifest.shards[e.shard].file_bytes} bytes)",
                region="catalog",
            )
        per_shard_end[e.shard] = end
        per_shard_count[e.shard] += 1
    for sid, shard in enumerate(manifest.shards):
        if per_shard_count[sid] != shard.n_chunks:
            raise CorruptionError(
                f"shard {sid} table says {shard.n_chunks} chunks but the "
                f"chunk table places {per_shard_count[sid]} there",
                region="catalog",
            )
    covered = manifest.n_values * manifest.config.word_bytes
    if covered + len(manifest.tail) != manifest.total_bytes:
        raise CorruptionError(
            f"chunk table covers {covered} bytes + {len(manifest.tail)} "
            f"tail but total length says {manifest.total_bytes}",
            region="catalog",
        )


def read_catalog(directory: str | os.PathLike) -> ArchiveManifest:
    """Load and validate ``catalog.prac`` from an archive directory."""
    path = Path(directory) / CATALOG_NAME
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        raise TruncationError(
            f"archive is unsealed: {CATALOG_NAME} is missing "
            f"(crashed writer, or not an archive directory)",
            region="catalog",
        ) from None
    manifest = decode_catalog(data)
    if _OBS_STATE.enabled:
        reg = _obs_metrics.registry()
        reg.counter("catalog.read.manifest_bytes").inc(len(data))
        reg.counter("catalog.read.opens").inc()
    return manifest


# --------------------------------------------------------------------- #
# writer                                                                 #
# --------------------------------------------------------------------- #


class ShardedArchiveWriter:
    """Write a sharded PRIF archive with K concurrent shard writers.

    Chunks are cut in arrival order and dealt round-robin to ``shards``
    per-shard :class:`~repro.storage.writer.PrimacyFileWriter`\\ s, all
    fed through one shared :class:`~repro.parallel.ParallelEngine`:
    chunk *g* compresses in a worker while earlier records of *every*
    shard are hitting their files.  Each shard is an ordinary PRIF file
    staged and published atomically; :meth:`close` commits the shards
    in order and seals the catalog last, so a crash at any point leaves
    a salvageable, never-corrupt directory.

    Parameters
    ----------
    directory:
        Archive directory (created if missing; must not already hold a
        catalog).
    config:
        Pipeline configuration (``PER_CHUNK`` index policy required --
        records must be self-contained for direct catalog seeks).
    shards:
        Number of shard files (>= 1).
    workers:
        Engine pool size; defaults to ``shards`` so each shard writer
        effectively owns a worker.  ``1`` runs inline.
    engine:
        Share an existing engine (the caller owns its lifetime).
    planner:
        A :class:`repro.planner.PlannerConfig` instead of ``config``:
        records are planner-written (self-describing), the catalog
        carries the planner's base config plus the planned flag, and
        per-chunk decisions accumulate in :attr:`decisions`.
    durable:
        Stage shards and catalog in ``*.tmp`` and publish with
        fsync+rename (default on).
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        config: PrimacyConfig | None = None,
        *,
        shards: int = 4,
        workers: int | None = None,
        engine=None,
        planner=None,
        durable: bool = True,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if planner is not None and config is not None:
            raise ValueError("pass config= or planner=, not both")
        self.planner = planner
        self.decisions: list = []
        self.config = planner.base if planner is not None else (
            config or PrimacyConfig()
        )
        if self.config.index_policy is not IndexReusePolicy.PER_CHUNK:
            raise ValueError(
                "sharded archives require the PER_CHUNK index policy; "
                "catalog seeks need self-contained records"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        if (self.directory / CATALOG_NAME).exists():
            raise ValueError(
                f"{self.directory} already holds a sealed archive"
            )
        self.n_shards = shards
        self._durable = durable
        self._engine = engine
        self._owns_engine = False
        if engine is None:
            from repro.parallel.engine import ParallelEngine

            self._engine = ParallelEngine(
                self.config, workers=workers if workers is not None else shards
            )
            self._owns_engine = True
        self._writers = [
            PrimacyFileWriter(
                self.directory / shard_name(sid),
                config=None if planner is not None else self.config,
                planner=planner,
                engine=self._engine,
                durable=durable,
            )
            for sid in range(shards)
        ]
        self._buffer = bytearray()
        self._chunk_shard: list[int] = []  # shard id per global chunk
        self._next_shard = 0
        self._total_bytes = 0
        self._closed = False
        self.stats = PrimacyStats()

    # ------------------------------------------------------------------

    def write(self, data: bytes | bytearray | memoryview) -> None:
        """Append raw value bytes; full chunks are dealt to shards eagerly."""
        if self._closed:
            raise ValueError("writer is closed")
        self._buffer += data
        self._total_bytes += len(data)
        chunk_bytes = self.config.chunk_bytes
        while len(self._buffer) >= chunk_bytes:
            self._dispatch(chunk_bytes)

    def _dispatch(self, length: int) -> None:
        """Feed the first ``length`` buffered bytes to the next shard."""
        sid = self._next_shard
        self._next_shard = (sid + 1) % self.n_shards
        with memoryview(self._buffer) as view:
            self._writers[sid].write(view[:length])
        del self._buffer[:length]
        self._chunk_shard.append(sid)
        if _OBS_STATE.enabled:
            reg = _obs_metrics.registry()
            reg.counter("catalog.write.chunks").inc()
            reg.counter("catalog.write.bytes", shard=str(sid)).inc(length)

    def close(self) -> None:
        """Flush, commit every shard in order, then seal the catalog.

        The catalog is the publication point of the *archive*: readers
        refuse a directory without one, so a crash anywhere before the
        final rename leaves an unsealed (but per-shard salvageable)
        directory, never a lying one.
        """
        if self._closed:
            return
        word = self.config.word_bytes
        usable = len(self._buffer) - (len(self._buffer) % word)
        if usable:
            self._dispatch(usable)
        tail = bytes(self._buffer)
        del self._buffer[:]
        shard_entries = []
        for sid, writer in enumerate(self._writers):
            t0 = time.perf_counter() if _OBS_STATE.enabled else 0.0
            writer.close()
            shard_entries.append(writer.chunk_entries())
            for chunk_stats in writer.stats.chunks:
                self.stats.add(chunk_stats)
            self.decisions.extend(writer.decisions)
            if _OBS_STATE.enabled:
                reg = _obs_metrics.registry()
                reg.counter(
                    "catalog.write.seconds", shard=str(sid)
                ).inc(time.perf_counter() - t0)
                _obs_trace.record_span(
                    "catalog.commit_shard", time.perf_counter() - t0
                )
        if self._owns_engine:
            self._engine.close()
        # Global chunk order interleaves the per-shard tables exactly as
        # the round-robin dealt them.
        cursor = [0] * self.n_shards
        entries: list[CatalogEntry] = []
        for sid in self._chunk_shard:
            entry = shard_entries[sid][cursor[sid]]
            cursor[sid] += 1
            entries.append(
                CatalogEntry(
                    shard=sid,
                    offset=entry.offset,
                    length=entry.length,
                    n_values=entry.n_values,
                )
            )
        shards = [
            ShardInfo(
                name=shard_name(sid),
                file_bytes=(self.directory / shard_name(sid)).stat().st_size,
                n_chunks=len(shard_entries[sid]),
            )
            for sid in range(self.n_shards)
        ]
        self.manifest = ArchiveManifest(
            config=self.config,
            planned=self.planner is not None,
            shards=tuple(shards),
            entries=tuple(entries),
            tail=tail,
            total_bytes=self._total_bytes,
        )
        blob = encode_catalog(self.manifest)
        catalog_path = self.directory / CATALOG_NAME
        if self._durable:
            out = AtomicFile(catalog_path)
            try:
                out.write(blob)
            except BaseException:
                out.discard()
                raise
            out.commit()
        else:
            catalog_path.write_bytes(blob)
        self.stats.container_bytes = (
            sum(s.file_bytes for s in shards) + len(blob)
        )
        self.stats.original_bytes = self._total_bytes
        self._closed = True

    def abort(self) -> None:
        """Abandon the archive: discard staged shards, seal nothing."""
        if self._closed:
            return
        for writer in self._writers:
            writer.abort()
        if self._owns_engine:
            self._engine.close()
        self._closed = True

    # ------------------------------------------------------------------

    def __enter__(self) -> "ShardedArchiveWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Sealing after an exception would publish an archive that
        # *looks* complete; abort instead (mirrors PrimacyFileWriter).
        if exc_type is not None:
            self.abort()
        else:
            self.close()

    @property
    def n_chunks(self) -> int:
        """Chunks dealt so far (written or still compressing)."""
        return len(self._chunk_shard)


# --------------------------------------------------------------------- #
# reader                                                                 #
# --------------------------------------------------------------------- #


class ShardedArchiveReader:
    """Random access into a sharded archive via its catalog.

    ``read_chunk(i)`` / ``read_range(lo, hi)`` open only the covering
    shard(s) and seek directly by catalog offsets -- the manifest is the
    single metadata read of the whole session.  Open shard handles are
    kept in an LRU (``max_open_shards``) so chunk-sequential scans over
    wide archives do not thrash file descriptors.
    """

    def __init__(
        self, directory: str | os.PathLike, *, max_open_shards: int = 8
    ) -> None:
        if max_open_shards < 1:
            raise ValueError("max_open_shards must be >= 1")
        self.directory = Path(directory)
        self.manifest = read_catalog(self.directory)
        try:
            self._compressor = PrimacyCompressor(self.manifest.config)
        except (KeyError, ValueError) as exc:
            raise CorruptionError(
                f"PRAC catalog names an unusable pipeline: {exc}",
                region="catalog-header",
            ) from exc
        counts = [e.n_values for e in self.manifest.entries]
        self._cum_list: list[int] = np.concatenate(
            [[0], np.cumsum(counts, dtype=np.int64)]
        ).tolist()
        self._max_open = max_open_shards
        self._handles: "OrderedDict[int, io.BufferedReader]" = OrderedDict()

    # ------------------------------------------------------------------

    @property
    def n_chunks(self) -> int:
        """Number of global chunks."""
        return len(self.manifest.entries)

    @property
    def n_values(self) -> int:
        """Number of values covered."""
        return int(self._cum_list[-1])

    def _shard_handle(self, shard_id: int) -> io.BufferedReader:
        handle = self._handles.get(shard_id)
        reg = _obs_metrics.registry() if _OBS_STATE.enabled else None
        if handle is not None:
            self._handles.move_to_end(shard_id)
            if reg is not None:
                reg.counter("catalog.handles.hit").inc()
            return handle
        if reg is not None:
            reg.counter("catalog.handles.miss").inc()
            reg.counter("catalog.shards.opened").inc()
        path = self.directory / self.manifest.shards[shard_id].name
        try:
            handle = open(path, "rb")
        except FileNotFoundError:
            raise CorruptionError(
                f"catalog names shard {path.name} but the file is missing",
                region=f"shard[{shard_id}]",
            ) from None
        self._handles[shard_id] = handle
        if len(self._handles) > self._max_open:
            _evicted, old = self._handles.popitem(last=False)
            old.close()
            if reg is not None:
                reg.counter("catalog.handles.evicted").inc()
        return handle

    def read_chunk(self, chunk_id: int) -> bytes:
        """Decompress one global chunk; touches the covering shard only."""
        if not 0 <= chunk_id < self.n_chunks:
            raise ValueError(
                f"chunk {chunk_id} out of range [0, {self.n_chunks})"
            )
        t0 = time.perf_counter() if _OBS_STATE.enabled else 0.0
        entry = self.manifest.entries[chunk_id]
        fh = self._shard_handle(entry.shard)
        fh.seek(entry.offset)
        record = fh.read(entry.length)
        if len(record) != entry.length:
            raise TruncationError(
                f"chunk {chunk_id} record truncated in shard {entry.shard}",
                region=f"shard[{entry.shard}]",
                offset=entry.offset,
            )
        try:
            chunk, _ = self._compressor.decompress_chunk(record, None)
        except (CorruptionError, TruncationError) as exc:
            if exc.region is None:
                exc.region = f"chunk[{chunk_id}]"
                exc.offset = entry.offset
            raise
        if len(chunk) != entry.n_values * self.manifest.config.word_bytes:
            raise CorruptionError(
                f"chunk {chunk_id} decoded to {len(chunk)} bytes but the "
                f"catalog promises {entry.n_values} values",
                region=f"chunk[{chunk_id}]",
                offset=entry.offset,
            )
        if _OBS_STATE.enabled:
            reg = _obs_metrics.registry()
            reg.counter("catalog.read.chunks").inc()
            reg.counter("catalog.read.bytes_touched").inc(len(record))
            reg.counter("catalog.read.bytes_returned").inc(len(chunk))
            _obs_trace.record_span(
                "catalog.read_chunk", time.perf_counter() - t0
            )
        return chunk

    def read_range(self, lo: int, hi: int) -> bytes:
        """Decompress global chunks ``[lo, hi)``, concatenated."""
        if lo < 0 or hi < lo or hi > self.n_chunks:
            raise ValueError(
                f"chunk range [{lo}, {hi}) out of bounds "
                f"[0, {self.n_chunks})"
            )
        return b"".join(self.read_chunk(i) for i in range(lo, hi))

    def read_values(self, start: int, count: int) -> bytes:
        """Decompress values ``[start, start + count)`` only."""
        from bisect import bisect_right

        if start < 0 or count < 0:
            raise ValueError("start and count must be non-negative")
        if start + count > self.n_values:
            raise ValueError("value range beyond end of archive")
        if count == 0:
            return b""
        word = self.manifest.config.word_bytes
        first = bisect_right(self._cum_list, start) - 1
        last = bisect_right(self._cum_list, start + count - 1) - 1
        blob = self.read_range(first, last + 1)
        offset = (start - self._cum_list[first]) * word
        return blob[offset : offset + count * word]

    def read_all(self) -> bytes:
        """Decompress the whole archive."""
        out = self.read_range(0, self.n_chunks) + self.manifest.tail
        if len(out) != self.manifest.total_bytes:
            raise CorruptionError("PRAC archive length mismatch")
        return out

    def close(self) -> None:
        """Close every open shard handle."""
        while self._handles:
            _sid, handle = self._handles.popitem(last=False)
            handle.close()

    def __enter__(self) -> "ShardedArchiveReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# --------------------------------------------------------------------- #
# compaction                                                             #
# --------------------------------------------------------------------- #


class _RawShardWriter:
    """Append pre-compressed records to a new PRIF shard (compact path).

    Records under the ``PER_CHUNK`` policy are self-contained, so
    compaction moves them verbatim -- header, body framing, footer, and
    trailer are rebuilt, the payload bytes are not touched.
    """

    def __init__(
        self, path: Path, config: PrimacyConfig, planned: bool
    ) -> None:
        self._atomic = AtomicFile(path)
        self._header = encode_header(config, planned=planned)
        self._atomic.write(self._header)
        self._pos = len(self._header)
        self._word = config.word_bytes
        self.entries: list = []

    def append(self, record: bytes, n_values: int) -> None:
        """Write one verbatim record; returns nothing (entry recorded)."""
        prefix = encode_uvarint(len(record))
        self._atomic.write(prefix)
        self._atomic.write(record)
        self.entries.append(
            ChunkEntry(
                offset=self._pos + len(prefix),
                length=len(record),
                n_values=n_values,
                inline_index=True,
                index_base=len(self.entries),
            )
        )
        self._pos += len(prefix) + len(record)

    def commit(self) -> None:
        """Write footer + trailer and atomically publish the shard."""
        total = sum(e.n_values for e in self.entries) * self._word
        footer = encode_footer(self.entries, b"", total)
        self._atomic.write(footer)
        self._atomic.write(encode_trailer(self._header, footer))
        self._atomic.commit()

    def discard(self) -> None:
        """Drop the staged shard."""
        self._atomic.discard()


def compact_archive(
    source: str | os.PathLike,
    dest: str | os.PathLike,
    *,
    shards: int | None = None,
) -> ArchiveManifest:
    """Rewrite an archive into a balanced layout with ``shards`` shards.

    Records are copied verbatim (no recompression): the catalog is the
    authority for record extents and value counts, so small or sparse
    shards fold into an even round-robin layout at disk speed.  The new
    catalog seals last, exactly like a fresh pack.
    """
    source = Path(source)
    dest = Path(dest)
    manifest = read_catalog(source)
    if shards is None:
        shards = len(manifest.shards)
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if dest.resolve() == source.resolve():
        raise ValueError("compact requires a destination != source")
    dest.mkdir(parents=True, exist_ok=True)
    if (dest / CATALOG_NAME).exists():
        raise ValueError(f"{dest} already holds a sealed archive")
    writers = [
        _RawShardWriter(
            dest / shard_name(sid), manifest.config, manifest.planned
        )
        for sid in range(shards)
    ]
    entries: list[CatalogEntry] = []
    try:
        with ShardedArchiveReader(source) as reader:
            for gid, entry in enumerate(manifest.entries):
                fh = reader._shard_handle(entry.shard)
                fh.seek(entry.offset)
                record = fh.read(entry.length)
                if len(record) != entry.length:
                    raise TruncationError(
                        f"chunk {gid} record truncated in shard "
                        f"{entry.shard}",
                        region=f"shard[{entry.shard}]",
                        offset=entry.offset,
                    )
                sid = gid % shards
                writers[sid].append(record, entry.n_values)
                new = writers[sid].entries[-1]
                entries.append(
                    CatalogEntry(
                        shard=sid,
                        offset=new.offset,
                        length=new.length,
                        n_values=new.n_values,
                    )
                )
        for writer in writers:
            writer.commit()
    except BaseException:
        for writer in writers:
            writer.discard()
        raise
    shard_infos = [
        ShardInfo(
            name=shard_name(sid),
            file_bytes=(dest / shard_name(sid)).stat().st_size,
            n_chunks=len(writers[sid].entries),
        )
        for sid in range(shards)
    ]
    new_manifest = ArchiveManifest(
        config=manifest.config,
        planned=manifest.planned,
        shards=tuple(shard_infos),
        entries=tuple(entries),
        tail=manifest.tail,
        total_bytes=manifest.total_bytes,
    )
    blob = encode_catalog(new_manifest)
    out = AtomicFile(dest / CATALOG_NAME)
    try:
        out.write(blob)
    except BaseException:
        out.discard()
        raise
    out.commit()
    return new_manifest
