"""Random-access PRIF reader.

``read_values(start, count)`` touches only the chunks covering the
requested value range.  Index-reuse chains are resolved from record
*headers*: when the target chunk inherited its ID index, the reader walks
from the chunk's ``index_base`` (recorded in the footer) forward, parsing
just the index sections of the intermediate records -- no payload
decompression -- to rebuild the index in effect.

Every metadata field is validated on open (typed
:class:`CorruptionError` / :class:`TruncationError`, with the trailer
CRC covering header + footer), and record decoding failures are
normalized to :class:`CorruptionError` carrying the chunk id -- a
damaged file can never surface as an ``IndexError`` from deep inside the
pipeline.
"""

from __future__ import annotations

import io
import os
import time
from bisect import bisect_right
from collections import OrderedDict
from pathlib import Path

import numpy as np

from repro.compressors.base import CodecError, CorruptionError, TruncationError
from repro.core.idmap import FrequencyIndex
from repro.core.primacy import (
    PrimacyCompressor,
    chunk_record_index_section,
)
from repro.obs import metrics as _obs_metrics
from repro.obs import trace as _obs_trace
from repro.obs.runtime import STATE as _OBS_STATE
from repro.storage.format import (
    TRAILER_BYTES,
    ChunkEntry,
    FileInfo,
    decode_footer,
    decode_header,
    decode_trailer,
)
from repro.util.checksum import crc32

__all__ = ["PrimacyFileReader"]

# Initial header window; doubled until the header parses or the whole
# pre-footer region has been read (headers are tiny, but codec/policy
# names make them variable-length, so no fixed cap is correct).
_HEADER_PROBE_BYTES = 4096

# Parsed-metadata cache for path-opened readers, keyed by file identity
# (path, inode, size, mtime): re-opening the same sealed file skips the
# trailer seek, footer read, CRC, and table decode entirely.  FileInfo
# is frozen, so entries are shared safely across readers.  Bounded LRU;
# a rewritten file changes identity (atomic rename bumps the inode) and
# simply misses.
_METADATA_CACHE_SLOTS = 32
_metadata_cache: "OrderedDict[tuple, tuple[FileInfo, int]]" = OrderedDict()


class PrimacyFileReader:
    """Read (ranges of) values from a PRIF file.

    Metadata (header + footer + CRC) is parsed once on open; the
    index-reuse chain state and per-chunk *before* indexes are memoized
    on the handle, so repeated ``read_chunk`` / ``read_values`` calls
    re-decode nothing but the requested payloads.  Path opens also hit
    a process-wide parsed-metadata cache (``cache_metadata=False``
    opts out, e.g. for fsck, which must re-verify the bytes on disk).
    """

    def __init__(
        self,
        source: str | os.PathLike | io.RawIOBase | io.BufferedIOBase,
        *,
        cache_metadata: bool = True,
    ) -> None:
        cache_key = None
        if isinstance(source, (str, os.PathLike)):
            path = Path(source)
            self._fh = open(path, "rb")
            self._owns_fh = True
            if cache_metadata:
                st = os.fstat(self._fh.fileno())
                cache_key = (
                    str(path.resolve()),
                    st.st_ino,
                    st.st_size,
                    st.st_mtime_ns,
                )
        else:
            self._fh = source
            self._owns_fh = False
        cached = (
            _metadata_cache.get(cache_key) if cache_key is not None else None
        )
        if cached is not None:
            _metadata_cache.move_to_end(cache_key)
            self.info, self._header_len = cached
            if _OBS_STATE.enabled:
                _obs_metrics.registry().counter(
                    "storage.read.metadata_cache_hit"
                ).inc()
        else:
            self._load_metadata()
            if cache_key is not None:
                _metadata_cache[cache_key] = (self.info, self._header_len)
                while len(_metadata_cache) > _METADATA_CACHE_SLOTS:
                    _metadata_cache.popitem(last=False)
                if _OBS_STATE.enabled:
                    _obs_metrics.registry().counter(
                        "storage.read.metadata_cache_miss"
                    ).inc()
        try:
            self._compressor = PrimacyCompressor(self.info.config)
        except (KeyError, ValueError) as exc:
            # Unknown codec / inconsistent widths: the header decoded but
            # does not describe a constructible pipeline.
            raise CorruptionError(
                f"PRIF header names an unusable pipeline: {exc}",
                region="header",
            ) from exc
        # Cumulative value counts for chunk lookup by value position.
        counts = [c.n_values for c in self.info.chunks]
        self._cum_values = np.concatenate(
            [[0], np.cumsum(counts, dtype=np.int64)]
        )
        # bisect needs a plain list; converting per read_values call is
        # O(n_chunks) each time, so do it exactly once.
        self._cum_list: list[int] = self._cum_values.tolist()
        self._index_cache: dict[int, FrequencyIndex] = {}
        # Resolved before-state per reuse chunk: a repeat read of the
        # same chunk skips the chain walk (even its cache lookups).
        self._index_before: dict[int, FrequencyIndex] = {}

    # ------------------------------------------------------------------

    def _load_metadata(self) -> None:
        fh = self._fh
        fh.seek(0, io.SEEK_END)
        size = fh.tell()
        if size < TRAILER_BYTES + 6:
            raise TruncationError(
                "file too small to be PRIF", region="trailer", offset=size
            )
        fh.seek(size - TRAILER_BYTES)
        trailer = fh.read(TRAILER_BYTES)
        footer_len, metadata_crc = decode_trailer(trailer)
        footer_start = size - TRAILER_BYTES - footer_len
        if footer_start < 6:
            raise CorruptionError(
                f"PRIF footer length {footer_len} exceeds the file",
                region="trailer",
            )
        fh.seek(footer_start)
        footer = fh.read(footer_len)
        if len(footer) != footer_len:
            raise TruncationError("truncated PRIF footer", region="footer")

        header, header_len = self._read_header(footer_start)
        if crc32(footer, value=crc32(header[:header_len])) != metadata_crc:
            raise CorruptionError(
                "PRIF metadata checksum mismatch (header or footer corrupt)",
                region="metadata",
            )
        config, _, planned = decode_header(header)
        chunks, tail, total_bytes = decode_footer(footer)
        self._validate_geometry(chunks, header_len, footer_start, config, tail,
                                total_bytes)
        self.info = FileInfo(
            config=config,
            chunks=tuple(chunks),
            tail=tail,
            total_bytes=total_bytes,
            planned=planned,
        )
        self._header_len = header_len

    def _read_header(self, footer_start: int) -> tuple[bytes, int]:
        """Read and parse the header, growing the window as needed."""
        fh = self._fh
        window = min(footer_start, _HEADER_PROBE_BYTES)
        while True:
            fh.seek(0)
            header = fh.read(window)
            try:
                _, header_len, _ = decode_header(header)
                return header, header_len
            except TruncationError:
                if window >= footer_start:
                    raise
                window = min(footer_start, window * 2)

    @staticmethod
    def _validate_geometry(
        chunks: list[ChunkEntry],
        header_len: int,
        footer_start: int,
        config,
        tail: bytes,
        total_bytes: int,
    ) -> None:
        """Cross-check the chunk table against the file's actual extent."""
        if chunks:
            if chunks[0].offset < header_len:
                raise CorruptionError(
                    f"chunk 0 offset {chunks[0].offset} lies inside the "
                    f"{header_len}-byte header",
                    region="chunk-table",
                )
            last = chunks[-1]
            if last.offset + last.length > footer_start:
                raise CorruptionError(
                    f"chunk {len(chunks) - 1} extends past the footer "
                    f"(ends {last.offset + last.length}, footer at "
                    f"{footer_start})",
                    region="chunk-table",
                )
        covered = sum(c.n_values for c in chunks) * config.word_bytes
        if covered + len(tail) != total_bytes:
            raise CorruptionError(
                f"chunk table covers {covered} bytes + {len(tail)} tail "
                f"but total length says {total_bytes}",
                region="chunk-table",
            )

    # ------------------------------------------------------------------

    @property
    def n_values(self) -> int:
        """Number of values covered."""
        return int(self._cum_values[-1])

    @property
    def n_chunks(self) -> int:
        """Number of chunks."""
        return len(self.info.chunks)

    def read_all(self) -> bytes:
        """Decompress the whole file."""
        parts = [self._read_chunk(i) for i in range(self.n_chunks)]
        out = b"".join(parts) + self.info.tail
        if len(out) != self.info.total_bytes:
            raise CorruptionError("PRIF length mismatch")
        return out

    def read_values(self, start: int, count: int) -> bytes:
        """Decompress values ``[start, start + count)`` only.

        Returns exactly ``count * word_bytes`` bytes.
        """
        if start < 0 or count < 0:
            raise ValueError("start and count must be non-negative")
        if start + count > self.n_values:
            raise ValueError("value range beyond end of file")
        if count == 0:
            return b""
        word = self.info.config.word_bytes
        first = bisect_right(self._cum_list, start) - 1
        last = bisect_right(self._cum_list, start + count - 1) - 1
        parts = [self._read_chunk(i) for i in range(first, last + 1)]
        blob = b"".join(parts)
        offset = (start - self._cum_list[first]) * word
        return blob[offset : offset + count * word]

    def read_chunk(self, chunk_id: int) -> bytes:
        """Decompress one chunk by id (bounds-checked)."""
        if not 0 <= chunk_id < self.n_chunks:
            raise ValueError(
                f"chunk {chunk_id} out of range [0, {self.n_chunks})"
            )
        return self._read_chunk(chunk_id)

    def read_range(self, lo: int, hi: int) -> bytes:
        """Decompress chunks ``[lo, hi)``, concatenated."""
        if lo < 0 or hi < lo or hi > self.n_chunks:
            raise ValueError(
                f"chunk range [{lo}, {hi}) out of bounds [0, {self.n_chunks})"
            )
        return b"".join(self._read_chunk(i) for i in range(lo, hi))

    # ------------------------------------------------------------------

    def _record(self, chunk_id: int) -> bytes:
        entry = self.info.chunks[chunk_id]
        self._fh.seek(entry.offset)
        record = self._fh.read(entry.length)
        if len(record) != entry.length:
            raise TruncationError(
                f"chunk {chunk_id} record truncated",
                region=f"chunk[{chunk_id}]",
                offset=entry.offset,
            )
        return record

    def _index_for(self, chunk_id: int) -> FrequencyIndex | None:
        """Index in effect *before* decoding chunk ``chunk_id``.

        Only meaningful for chunks that reuse an index; resolved by
        walking the reuse chain from the base chunk, applying extensions.
        """
        entry = self.info.chunks[chunk_id]
        if entry.inline_index:
            return None  # record is self-contained
        memo = self._index_before.get(chunk_id)
        if memo is not None:
            return memo
        high_bytes = self.info.config.high_bytes
        # Walk backwards to the nearest cached or inline chunk.
        base = entry.index_base
        index = self._index_cache.get(base)
        if index is None:
            inline, index, _ = self._index_section(base, high_bytes)
            if not inline:
                raise CorruptionError(
                    "PRIF index chain has no inline root",
                    region=f"chunk[{base}]",
                )
            self._index_cache[base] = index
        for mid in range(base + 1, chunk_id):
            cached = self._index_cache.get(mid)
            if cached is not None:
                index = cached
                continue
            inline, section, _ = self._index_section(mid, high_bytes)
            if inline:
                raise CorruptionError(
                    "PRIF reuse chain crosses an inline index",
                    region=f"chunk[{mid}]",
                )
            index = index.extended(section)
            self._index_cache[mid] = index
        self._index_before[chunk_id] = index
        return index

    def _index_section(self, chunk_id: int, high_bytes: int):
        try:
            return chunk_record_index_section(
                self._record(chunk_id), high_bytes
            )
        except CodecError as exc:
            self._tag(exc, chunk_id)
            raise

    def _read_chunk(self, chunk_id: int) -> bytes:
        t0 = time.perf_counter() if _OBS_STATE.enabled else 0.0
        record = self._record(chunk_id)
        current = self._index_for(chunk_id)
        try:
            chunk, index_after = self._compressor.decompress_chunk(
                record, current
            )
        except CodecError as exc:
            self._tag(exc, chunk_id)
            raise
        if _OBS_STATE.enabled:
            reg = _obs_metrics.registry()
            reg.counter("storage.read.chunks").inc()
            reg.counter("storage.read.bytes_compressed").inc(len(record))
            reg.counter("storage.read.bytes").inc(len(chunk))
            _obs_trace.record_span(
                "storage.read_chunk", time.perf_counter() - t0
            )
        entry = self.info.chunks[chunk_id]
        if len(chunk) != entry.n_values * self.info.config.word_bytes:
            raise CorruptionError(
                f"chunk {chunk_id} decoded to {len(chunk)} bytes but the "
                f"chunk table promises {entry.n_values} values",
                region=f"chunk[{chunk_id}]",
                offset=entry.offset,
            )
        self._index_cache[chunk_id] = index_after
        return chunk

    def _tag(self, exc: CodecError, chunk_id: int) -> None:
        """Attach chunk location to a decode error that lacks one."""
        if isinstance(exc, CorruptionError) and exc.region is None:
            exc.region = f"chunk[{chunk_id}]"
            if exc.offset is None:
                exc.offset = self.info.chunks[chunk_id].offset

    # ------------------------------------------------------------------

    def chunk_entries(self) -> tuple[ChunkEntry, ...]:
        """The footer's chunk table."""
        return self.info.chunks

    def close(self) -> None:
        """Flush/close the underlying file if owned."""
        if self._owns_fh:
            self._fh.close()

    def __enter__(self) -> "PrimacyFileReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
