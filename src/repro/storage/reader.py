"""Random-access PRIF reader.

``read_values(start, count)`` touches only the chunks covering the
requested value range.  Index-reuse chains are resolved from record
*headers*: when the target chunk inherited its ID index, the reader walks
from the chunk's ``index_base`` (recorded in the footer) forward, parsing
just the index sections of the intermediate records -- no payload
decompression -- to rebuild the index in effect.
"""

from __future__ import annotations

import io
import os
from bisect import bisect_right
from pathlib import Path

import numpy as np

from repro.compressors.base import CodecError
from repro.core.idmap import FrequencyIndex
from repro.core.primacy import (
    PrimacyCompressor,
    chunk_record_index_section,
)
from repro.storage.format import (
    END_MAGIC,
    ChunkEntry,
    FileInfo,
    decode_footer,
    decode_header,
)

__all__ = ["PrimacyFileReader"]

_TRAILER_BYTES = 12


class PrimacyFileReader:
    """Read (ranges of) values from a PRIF file."""

    def __init__(
        self, source: str | os.PathLike | io.RawIOBase | io.BufferedIOBase
    ) -> None:
        if isinstance(source, (str, os.PathLike)):
            self._fh = open(Path(source), "rb")
            self._owns_fh = True
        else:
            self._fh = source
            self._owns_fh = False
        self._load_metadata()
        self._compressor = PrimacyCompressor(self.info.config)
        # Cumulative value counts for chunk lookup by value position.
        counts = [c.n_values for c in self.info.chunks]
        self._cum_values = np.concatenate(
            [[0], np.cumsum(counts, dtype=np.int64)]
        )
        self._index_cache: dict[int, FrequencyIndex] = {}

    # ------------------------------------------------------------------

    def _load_metadata(self) -> None:
        fh = self._fh
        fh.seek(0, io.SEEK_END)
        size = fh.tell()
        if size < _TRAILER_BYTES + 4:
            raise CodecError("file too small to be PRIF")
        fh.seek(size - _TRAILER_BYTES)
        trailer = fh.read(_TRAILER_BYTES)
        if trailer[8:] != END_MAGIC:
            raise CodecError("missing PRIF end marker")
        footer_len = int.from_bytes(trailer[:8], "little")
        footer_start = size - _TRAILER_BYTES - footer_len
        if footer_start < 0:
            raise CodecError("corrupt PRIF footer length")
        fh.seek(footer_start)
        footer = fh.read(footer_len)
        chunks, tail, total_bytes = decode_footer(footer)
        fh.seek(0)
        header = fh.read(min(footer_start, 4096))
        config, _ = decode_header(header)
        self.info = FileInfo(
            config=config,
            chunks=tuple(chunks),
            tail=tail,
            total_bytes=total_bytes,
        )

    # ------------------------------------------------------------------

    @property
    def n_values(self) -> int:
        """Number of values covered."""
        return int(self._cum_values[-1])

    @property
    def n_chunks(self) -> int:
        """Number of chunks."""
        return len(self.info.chunks)

    def read_all(self) -> bytes:
        """Decompress the whole file."""
        parts = [self._read_chunk(i) for i in range(self.n_chunks)]
        out = b"".join(parts) + self.info.tail
        if len(out) != self.info.total_bytes:
            raise CodecError("PRIF length mismatch")
        return out

    def read_values(self, start: int, count: int) -> bytes:
        """Decompress values ``[start, start + count)`` only.

        Returns exactly ``count * word_bytes`` bytes.
        """
        if start < 0 or count < 0:
            raise ValueError("start and count must be non-negative")
        if start + count > self.n_values:
            raise ValueError("value range beyond end of file")
        if count == 0:
            return b""
        word = self.info.config.word_bytes
        first = bisect_right(self._cum_values.tolist(), start) - 1
        last = bisect_right(self._cum_values.tolist(), start + count - 1) - 1
        parts = [self._read_chunk(i) for i in range(first, last + 1)]
        blob = b"".join(parts)
        offset = (start - int(self._cum_values[first])) * word
        return blob[offset : offset + count * word]

    # ------------------------------------------------------------------

    def _record(self, chunk_id: int) -> bytes:
        entry = self.info.chunks[chunk_id]
        self._fh.seek(entry.offset)
        record = self._fh.read(entry.length)
        if len(record) != entry.length:
            raise CodecError("truncated chunk record")
        return record

    def _index_for(self, chunk_id: int) -> FrequencyIndex | None:
        """Index in effect *before* decoding chunk ``chunk_id``.

        Only meaningful for chunks that reuse an index; resolved by
        walking the reuse chain from the base chunk, applying extensions.
        """
        entry = self.info.chunks[chunk_id]
        if entry.inline_index:
            return None  # record is self-contained
        high_bytes = self.info.config.high_bytes
        # Walk backwards to the nearest cached or inline chunk.
        base = entry.index_base
        index = self._index_cache.get(base)
        if index is None:
            inline, index, _ = chunk_record_index_section(
                self._record(base), high_bytes
            )
            if not inline:
                raise CodecError("PRIF index chain has no inline root")
            self._index_cache[base] = index
        for mid in range(base + 1, chunk_id):
            cached = self._index_cache.get(mid)
            if cached is not None:
                index = cached
                continue
            inline, section, _ = chunk_record_index_section(
                self._record(mid), high_bytes
            )
            if inline:
                raise CodecError("PRIF reuse chain crosses an inline index")
            index = index.extended(section)
            self._index_cache[mid] = index
        return index

    def _read_chunk(self, chunk_id: int) -> bytes:
        record = self._record(chunk_id)
        current = self._index_for(chunk_id)
        chunk, index_after = self._compressor.decompress_chunk(record, current)
        self._index_cache[chunk_id] = index_after
        return chunk

    # ------------------------------------------------------------------

    def chunk_entries(self) -> tuple[ChunkEntry, ...]:
        """The footer's chunk table."""
        return self.info.chunks

    def close(self) -> None:
        """Flush/close the underlying file if owned."""
        if self._owns_fh:
            self._fh.close()

    def __enter__(self) -> "PrimacyFileReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
