"""Streaming PRIF writer.

Designed for the in-situ pattern the paper targets: the simulation calls
:meth:`PrimacyFileWriter.write` with whatever it has produced (any byte
granularity); the writer cuts word-aligned chunks of the configured size,
compresses each immediately (bounded memory), and appends the record.
:meth:`close` flushes the partial last chunk and writes the footer.

With ``workers=``/``engine=`` the writer goes *pipelined*: chunks are fanned
out to a :class:`repro.parallel.ParallelEngine` and records are written as
they complete, in order -- while record *k* hits the file, records
*k+1..k+max_pending* are compressing in the workers.  Output bytes and
accumulated :class:`~repro.core.PrimacyStats` are identical to the serial
path (records are independent under the ``PER_CHUNK`` index policy, which
pipelined mode therefore requires).

Usable as a context manager; statistics (:class:`repro.core.PrimacyStats`)
accumulate across the stream for model calibration.
"""

from __future__ import annotations

import io
import os
import time
from collections import deque
from pathlib import Path

from repro.core.idmap import IndexReusePolicy
from repro.core.primacy import (
    PrimacyCompressor,
    PrimacyConfig,
    PrimacyStats,
)
from repro.obs import metrics as _obs_metrics
from repro.obs import trace as _obs_trace
from repro.obs.runtime import STATE as _OBS_STATE
from repro.storage.format import (
    ChunkEntry,
    encode_footer,
    encode_header,
    encode_trailer,
)
from repro.util.durable import AtomicFile
from repro.util.varint import encode_uvarint

__all__ = ["PrimacyFileWriter"]


class PrimacyFileWriter:
    """Write PRIMACY-compressed values to a seekable file.

    Parameters
    ----------
    target:
        Path or writable binary file object.
    config:
        Pipeline configuration; stored in the header so any reader can
        reconstruct the pipeline.
    workers:
        Optional worker count; ``workers > 1`` overlaps chunk
        compression with file I/O (requires the ``PER_CHUNK`` index
        policy).  The engine is owned and shut down by :meth:`close`.
    engine:
        Share an existing :class:`repro.parallel.ParallelEngine`
        (e.g. across checkpoint segments); the caller owns its lifetime.
    planner:
        A :class:`repro.planner.PlannerConfig` instead of ``config``
        (mutually exclusive): every chunk is probed across the planner's
        candidates and written as a self-describing planned record; the
        header carries the planner's base config plus the *planned*
        flag.  Per-chunk :class:`repro.planner.Decision` objects
        accumulate in :attr:`decisions`.  Composes with ``workers=`` --
        the probe then runs inside the workers.
    durable:
        For path targets (default on): stage bytes in ``<target>.tmp``
        and atomically rename onto ``target`` at :meth:`close` (after
        fsync), so a crash mid-write never leaves a file a reader could
        mistake for complete.  Ignored for file-object targets.
    """

    def __init__(
        self,
        target: str | os.PathLike | io.RawIOBase | io.BufferedIOBase,
        config: PrimacyConfig | None = None,
        *,
        workers: int | None = None,
        engine=None,
        planner=None,
        durable: bool = True,
    ) -> None:
        if planner is not None and config is not None:
            raise ValueError("pass config= or planner=, not both")
        self.planner = planner
        self.decisions: list = []
        if planner is not None:
            self.config = planner.base
        else:
            self.config = config or PrimacyConfig()
        self._atomic: AtomicFile | None = None
        if isinstance(target, (str, os.PathLike)):
            if durable:
                self._atomic = AtomicFile(Path(target))
                self._fh = self._atomic
            else:
                self._fh = open(Path(target), "wb")
            self._owns_fh = True
        else:
            self._fh = target
            self._owns_fh = False
        self._engine = None
        self._owns_engine = False
        if engine is not None or workers is not None:
            if self.config.index_policy is not IndexReusePolicy.PER_CHUNK:
                raise ValueError(
                    "pipelined writes require the PER_CHUNK index policy; "
                    "reuse chains make chunk records order-dependent"
                )
            if engine is not None:
                self._engine = engine
            else:
                from repro.parallel.engine import ParallelEngine

                self._engine = ParallelEngine(self.config, workers=workers)
                self._owns_engine = True
        self._inflight: deque[int] = deque()
        # Persistent for the writer's lifetime, so its ScratchArena is
        # reused across every chunk written through the serial path.
        self._compressor = PrimacyCompressor(self.config)
        self._planner_inline = None  # lazy ChunkPlanner for serial planning
        self._buffer = bytearray()
        self._chunks: list[ChunkEntry] = []
        self._state = None
        self._last_inline = -1
        self._total_bytes = 0
        self._closed = False
        self.stats = PrimacyStats()

        self._header = encode_header(self.config, planned=planner is not None)
        self._fh.write(self._header)
        self._pos = len(self._header)

    # ------------------------------------------------------------------

    def write(self, data: bytes | bytearray | memoryview) -> None:
        """Append raw value bytes; chunks are cut and compressed eagerly."""
        if self._closed:
            raise ValueError("writer is closed")
        self._buffer += data
        self._total_bytes += len(data)
        chunk_bytes = self._compressor._chunker.chunk_bytes
        while len(self._buffer) >= chunk_bytes:
            self._emit_chunk(chunk_bytes)

    def close(self) -> None:
        """Flush the final partial chunk, write the footer, close the file.

        For durable path targets this is also the *publication* point:
        the staged ``.tmp`` file is fsynced and atomically renamed onto
        the target name only after the complete footer and trailer are
        on disk.
        """
        if self._closed:
            return
        word = self.config.word_bytes
        usable = len(self._buffer) - (len(self._buffer) % word)
        if usable:
            self._emit_chunk(usable)
        tail = bytes(self._buffer)
        self._drain(0)
        footer = encode_footer(self._chunks, tail, self._total_bytes)
        self._fh.write(footer)
        self._fh.write(encode_trailer(self._header, footer))
        self.stats.container_bytes = self._pos
        self.stats.original_bytes = self._total_bytes
        if self._owns_engine:
            self._engine.close()
        if self._atomic is not None:
            self._atomic.commit()
        elif self._owns_fh:
            self._fh.close()
        self._closed = True

    def abort(self) -> None:
        """Abandon the write: no footer, and no published file.

        Called by ``__exit__`` when the body raised; a durable target is
        left exactly as it was before the writer opened, and a plain
        file target keeps its (footer-less, hence unreadable) bytes.
        """
        if self._closed:
            return
        self._inflight.clear()
        if self._owns_engine:
            self._engine.close()
        if self._atomic is not None:
            self._atomic.discard()
        elif self._owns_fh:
            self._fh.close()
        self._closed = True

    # ------------------------------------------------------------------

    def _emit_chunk(self, length: int) -> None:
        """Compress and append the first ``length`` buffered bytes."""
        if self._engine is not None:
            from repro.parallel.engine import KIND_COMPRESS, KIND_PLAN_COMPRESS

            # Publish straight out of the accumulation buffer -- submit
            # copies into shared memory, so the bytes can be dropped as
            # soon as it returns (the view must be released first, or
            # the bytearray refuses to resize).
            with memoryview(self._buffer) as view:
                if self.planner is not None:
                    task_id = self._engine.submit(
                        KIND_PLAN_COMPRESS, view[:length], self.planner
                    )
                else:
                    task_id = self._engine.submit(
                        KIND_COMPRESS, view[:length], self.config
                    )
            self._inflight.append(task_id)
            del self._buffer[:length]
            self._drain(self._engine.max_pending)
            return
        if self.planner is not None:
            if self._planner_inline is None:
                from repro.planner.planner import ChunkPlanner

                self._planner_inline = ChunkPlanner(self.planner)
            with memoryview(self._buffer) as view:
                record, chunk_stats, decision = (
                    self._planner_inline.compress_chunk(view[:length])
                )
            del self._buffer[:length]
            self.decisions.append(decision)
            self._write_record(record, chunk_stats)
            return
        with memoryview(self._buffer) as view:
            record, chunk_stats, self._state = self._compressor.compress_chunk(
                view[:length], self._state
            )
        del self._buffer[:length]
        self._write_record(record, chunk_stats)

    def _drain(self, keep: int) -> None:
        """Write completed records (in order) until ``keep`` remain in flight."""
        while len(self._inflight) > keep:
            result = self._engine.pop(self._inflight.popleft())
            if self.planner is not None:
                record, chunk_stats, decision = result
                self.decisions.append(decision)
            else:
                record, chunk_stats = result
            self._write_record(record, chunk_stats)

    def _write_record(self, record: bytes, chunk_stats) -> None:
        if _OBS_STATE.enabled:
            t0 = time.perf_counter()
            self._write_record_inner(record, chunk_stats)
            seconds = time.perf_counter() - t0
            reg = _obs_metrics.registry()
            reg.counter("storage.write.records").inc()
            reg.counter("storage.write.bytes").inc(len(record))
            reg.gauge("storage.write.inflight").set(float(len(self._inflight)))
            _obs_trace.record_span("storage.write_record", seconds)
            return
        self._write_record_inner(record, chunk_stats)

    def _write_record_inner(self, record: bytes, chunk_stats) -> None:
        self.stats.add(chunk_stats)
        chunk_id = len(self._chunks)
        if not chunk_stats.index_reused:
            self._last_inline = chunk_id
        prefix = encode_uvarint(len(record))
        self._fh.write(prefix)
        self._fh.write(record)
        self._chunks.append(
            ChunkEntry(
                offset=self._pos + len(prefix),
                length=len(record),
                n_values=chunk_stats.n_values,
                inline_index=not chunk_stats.index_reused,
                index_base=self._last_inline,
            )
        )
        self._pos += len(prefix) + len(record)

    # ------------------------------------------------------------------

    def __enter__(self) -> "PrimacyFileWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Finalizing a half-written stream after an exception would
        # publish a file that *looks* complete; abort instead.
        if exc_type is not None:
            self.abort()
        else:
            self.close()

    @property
    def n_chunks(self) -> int:
        """Number of chunks (written or still compressing)."""
        return len(self._chunks) + len(self._inflight)

    def chunk_entries(self) -> tuple[ChunkEntry, ...]:
        """The written chunk table (complete only after :meth:`close`).

        Sharded-archive packing builds its global catalog from each
        shard writer's table, so the rows are exposed read-only here
        rather than re-parsed out of the finished file's footer.
        """
        if not self._closed:
            raise ValueError("chunk table is complete only after close()")
        return tuple(self._chunks)
