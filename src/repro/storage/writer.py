"""Streaming PRIF writer.

Designed for the in-situ pattern the paper targets: the simulation calls
:meth:`PrimacyFileWriter.write` with whatever it has produced (any byte
granularity); the writer cuts word-aligned chunks of the configured size,
compresses each immediately (bounded memory), and appends the record.
:meth:`close` flushes the partial last chunk and writes the footer.

Usable as a context manager; statistics (:class:`repro.core.PrimacyStats`)
accumulate across the stream for model calibration.
"""

from __future__ import annotations

import io
import os
from pathlib import Path

from repro.core.primacy import (
    PrimacyCompressor,
    PrimacyConfig,
    PrimacyStats,
)
from repro.storage.format import ChunkEntry, encode_footer, encode_header
from repro.util.varint import encode_uvarint

__all__ = ["PrimacyFileWriter"]


class PrimacyFileWriter:
    """Write PRIMACY-compressed values to a seekable file.

    Parameters
    ----------
    target:
        Path or writable binary file object.
    config:
        Pipeline configuration; stored in the header so any reader can
        reconstruct the pipeline.
    """

    def __init__(
        self,
        target: str | os.PathLike | io.RawIOBase | io.BufferedIOBase,
        config: PrimacyConfig | None = None,
    ) -> None:
        self.config = config or PrimacyConfig()
        if isinstance(target, (str, os.PathLike)):
            self._fh = open(Path(target), "wb")
            self._owns_fh = True
        else:
            self._fh = target
            self._owns_fh = False
        self._compressor = PrimacyCompressor(self.config)
        self._buffer = bytearray()
        self._chunks: list[ChunkEntry] = []
        self._state = None
        self._last_inline = -1
        self._total_bytes = 0
        self._closed = False
        self.stats = PrimacyStats()

        header = encode_header(self.config)
        self._fh.write(header)
        self._pos = len(header)

    # ------------------------------------------------------------------

    def write(self, data: bytes) -> None:
        """Append raw value bytes; chunks are cut and compressed eagerly."""
        if self._closed:
            raise ValueError("writer is closed")
        self._buffer += data
        self._total_bytes += len(data)
        chunk_bytes = self._compressor._chunker.chunk_bytes
        while len(self._buffer) >= chunk_bytes:
            self._emit_chunk(bytes(self._buffer[:chunk_bytes]))
            del self._buffer[:chunk_bytes]

    def close(self) -> None:
        """Flush the final partial chunk, write the footer, close the file."""
        if self._closed:
            return
        word = self.config.word_bytes
        usable = len(self._buffer) - (len(self._buffer) % word)
        tail = bytes(self._buffer[usable:])
        if usable:
            self._emit_chunk(bytes(self._buffer[:usable]))
        self._fh.write(encode_footer(self._chunks, tail, self._total_bytes))
        self.stats.container_bytes = self._pos
        self.stats.original_bytes = self._total_bytes
        if self._owns_fh:
            self._fh.close()
        self._closed = True

    # ------------------------------------------------------------------

    def _emit_chunk(self, chunk: bytes) -> None:
        record, chunk_stats, self._state = self._compressor.compress_chunk(
            chunk, self._state
        )
        self.stats.add(chunk_stats)
        chunk_id = len(self._chunks)
        if not chunk_stats.index_reused:
            self._last_inline = chunk_id
        prefix = encode_uvarint(len(record))
        self._fh.write(prefix)
        self._fh.write(record)
        self._chunks.append(
            ChunkEntry(
                offset=self._pos + len(prefix),
                length=len(record),
                n_values=chunk_stats.n_values,
                inline_index=not chunk_stats.index_reused,
                index_base=self._last_inline,
            )
        )
        self._pos += len(prefix) + len(record)

    # ------------------------------------------------------------------

    def __enter__(self) -> "PrimacyFileWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def n_chunks(self) -> int:
        """Number of chunks."""
        return len(self._chunks)
