"""Seekable on-disk format for PRIMACY-compressed data.

The in-memory container (:class:`repro.core.PrimacyCompressor`) is a
sequential blob: fine for network transfer, wrong for post-hoc analysis,
where a user wants *one variable slice out of a terabyte checkpoint*.
This package adds the storage layer a downstream user needs:

* :class:`~repro.storage.writer.PrimacyFileWriter` -- streaming writer:
  feed it value bytes incrementally (as a simulation produces them), it
  cuts chunks, compresses in-situ, and appends self-contained records;
  the chunk table goes into a footer on close.
* :class:`~repro.storage.reader.PrimacyFileReader` -- random access:
  ``read_values(start, count)`` decompresses only the chunks covering the
  request (resolving index-reuse chains from record headers without
  decompressing intermediate payloads).

Format (PRIF, little-endian)::

    header:  magic "PRIF" | version | config (codec, word/high bytes,
             linearization, checksum flag)
    body:    chunk records, back to back (byte-identical to the
             in-memory container's records)
    footer:  chunk table (offset, length, n_values, inline-index flag,
             index-base chunk) | tail bytes | total length
    trailer: uvarint-free fixed 16 bytes: footer length (u64) +
             CRC-32 of header+footer (u32) + "PRIE"

Robustness: decoding is fully bounds-checked (typed
:class:`~repro.compressors.base.CorruptionError` /
:class:`~repro.compressors.base.TruncationError` on any malformed
input), path writes are staged in ``*.tmp`` and published with
fsync + atomic rename, and :mod:`repro.storage.verify` provides
``fsck``/``salvage`` for damaged files.

Sharded archives (:mod:`repro.storage.catalog`) scale the same format
out: a directory of independent PRIF shards packed by K concurrent
writers plus a CRC-sealed manifest (``PRAC``) mapping global chunk
index to ``(shard, offset, length)`` for O(1) range reads.
"""

from repro.storage.catalog import (
    ArchiveManifest,
    CatalogEntry,
    ShardedArchiveReader,
    ShardedArchiveWriter,
    ShardInfo,
    compact_archive,
    read_catalog,
)
from repro.storage.format import FileInfo, ChunkEntry
from repro.storage.reader import PrimacyFileReader
from repro.storage.stream import FrameAssembler, encode_frame
from repro.storage.verify import (
    ArchiveReport,
    ArchiveSalvage,
    FsckReport,
    SalvageResult,
    fsck,
    fsck_archive,
    salvage_archive,
    salvage_prif,
)
from repro.storage.writer import PrimacyFileWriter

__all__ = [
    "PrimacyFileWriter",
    "PrimacyFileReader",
    "FileInfo",
    "ChunkEntry",
    "FrameAssembler",
    "encode_frame",
    "ArchiveManifest",
    "CatalogEntry",
    "ShardInfo",
    "ShardedArchiveWriter",
    "ShardedArchiveReader",
    "compact_archive",
    "read_catalog",
    "ArchiveReport",
    "ArchiveSalvage",
    "FsckReport",
    "SalvageResult",
    "fsck",
    "fsck_archive",
    "salvage_archive",
    "salvage_prif",
]
