"""Integrity checking (fsck) and recovery (salvage) for PRIF/PRCK files.

``fsck`` walks an artifact the way a paranoid reader would -- header,
trailer, metadata CRC, chunk table, every record (decoded and
checksummed), geometry cross-checks -- and reports *where* it diverges
instead of merely throwing.  ``salvage`` is the graceful-degradation
read: it recovers every chunk that is still reachable from an intact
index-reuse chain root, from files that are truncated (no footer at
all) or partially corrupt (footer intact, some records damaged).

Both power the ``primacy fsck`` / ``primacy salvage`` CLI subcommands
and the fault-injection suite under ``tests/faults``.

Sharded archives get the same treatment one level up:
:func:`fsck_archive` verifies the catalog, then every shard in parallel
(each shard is an ordinary PRIF file), cross-checking the catalog's
chunk extents against each shard's own footer; :func:`salvage_archive`
recovers through the catalog when it survived, and falls back to
independent per-shard salvage when the writer died before sealing.
Every report serializes with ``to_dict()`` so archive-level results
compose per-shard ones under one JSON contract (``primacy fsck --json``
/ ``primacy salvage --json``).
"""

from __future__ import annotations

import io
import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from repro.compressors.base import CodecError, CorruptionError, TruncationError
from repro.core.idmap import FrequencyIndex
from repro.core.primacy import PrimacyCompressor
from repro.storage.format import MAGIC, TRAILER_BYTES, decode_header
from repro.storage.reader import PrimacyFileReader
from repro.util.varint import decode_uvarint

__all__ = [
    "Finding",
    "FsckReport",
    "ChunkStatus",
    "SalvageResult",
    "ArchiveReport",
    "ArchiveSalvage",
    "fsck",
    "fsck_prif",
    "fsck_prck",
    "fsck_archive",
    "salvage_prif",
    "salvage_archive",
]

_PRCK_MAGIC = b"PRCK"


# --------------------------------------------------------------------- #
# reports                                                                #
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class Finding:
    """One localized integrity violation."""

    region: str  # "header", "trailer", "metadata", "chunk[3]", ...
    message: str
    offset: int | None = None  # absolute byte offset when known

    def __str__(self) -> str:
        where = f" @ byte {self.offset}" if self.offset is not None else ""
        return f"[{self.region}{where}] {self.message}"

    def to_dict(self) -> dict:
        """JSON-ready form."""
        return {
            "region": self.region,
            "message": self.message,
            "offset": self.offset,
        }


@dataclass
class FsckReport:
    """Everything fsck learned about one artifact."""

    format: str  # "PRIF" | "PRCK" | "unknown"
    findings: list[Finding] = field(default_factory=list)
    n_chunks: int = 0  # chunks (PRIF) or segments (PRCK) present
    n_chunks_ok: int = 0  # of those, how many verified end to end

    @property
    def ok(self) -> bool:
        """True when no integrity violation was found."""
        return not self.findings

    @property
    def first_divergence(self) -> Finding | None:
        """The first (lowest-level) violation, or None."""
        return self.findings[0] if self.findings else None

    def add(self, region: str, message: str, offset: int | None = None) -> None:
        """Record one violation."""
        self.findings.append(Finding(region=region, message=message, offset=offset))

    def add_error(self, exc: CodecError, fallback_region: str) -> None:
        """Record a typed decode error, reusing its location when present."""
        region = getattr(exc, "region", None) or fallback_region
        self.add(region, str(exc), getattr(exc, "offset", None))

    def summary(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"{self.format}: "
            + ("clean" if self.ok else f"{len(self.findings)} problem(s)"),
            f"chunks verified: {self.n_chunks_ok}/{self.n_chunks}",
        ]
        lines += [str(f) for f in self.findings]
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-ready form (the ``primacy fsck --json`` contract)."""
        return {
            "format": self.format,
            "ok": self.ok,
            "n_chunks": self.n_chunks,
            "n_chunks_ok": self.n_chunks_ok,
            "findings": [f.to_dict() for f in self.findings],
        }


@dataclass(frozen=True)
class ChunkStatus:
    """Salvage outcome for one chunk."""

    chunk_id: int
    value_start: int  # first value index this chunk covers
    n_values: int
    recovered: bool
    reason: str = ""  # why recovery failed, when it did


@dataclass
class SalvageResult:
    """What salvage pulled out of a damaged file."""

    mode: str  # "footer" (table intact) or "scan" (forward walk)
    chunks: list[ChunkStatus] = field(default_factory=list)
    data: bytes = b""  # recovered chunk bytes, concatenated in order
    tail: bytes = b""  # sub-word tail (only recoverable in footer mode)
    complete: bool = False  # everything (incl. tail) came back

    @property
    def n_recovered(self) -> int:
        """Chunks recovered."""
        return sum(1 for c in self.chunks if c.recovered)

    @property
    def values_recovered(self) -> int:
        """Values recovered across all chunks."""
        return sum(c.n_values for c in self.chunks if c.recovered)

    def summary(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"salvage ({self.mode} mode): {self.n_recovered}/"
            f"{len(self.chunks)} chunks, {self.values_recovered} values, "
            f"{len(self.data) + len(self.tail)} bytes"
            + (" (complete)" if self.complete else ""),
        ]
        for c in self.chunks:
            state = "ok" if c.recovered else f"LOST ({c.reason})"
            lines.append(
                f"  chunk {c.chunk_id}: values "
                f"[{c.value_start}, {c.value_start + c.n_values}) {state}"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-ready form (the ``primacy salvage --json`` contract).

        ``recovered_ranges`` / ``lost_ranges`` are half-open ``[lo, hi)``
        chunk-id intervals, so archive-level salvage can compose and a
        caller can plan re-reads without walking the per-chunk list.
        """
        return {
            "mode": self.mode,
            "complete": self.complete,
            "n_chunks": len(self.chunks),
            "n_recovered": self.n_recovered,
            "values_recovered": self.values_recovered,
            "bytes_recovered": len(self.data) + len(self.tail),
            "recovered_ranges": _chunk_ranges(self.chunks, recovered=True),
            "lost_ranges": _chunk_ranges(self.chunks, recovered=False),
            "chunks": [
                {
                    "chunk_id": c.chunk_id,
                    "value_start": c.value_start,
                    "n_values": c.n_values,
                    "recovered": c.recovered,
                    "reason": c.reason,
                }
                for c in self.chunks
            ],
        }


def _chunk_ranges(
    chunks: list[ChunkStatus], *, recovered: bool
) -> list[list[int]]:
    """Contiguous ``[lo, hi)`` chunk-id ranges with the given outcome."""
    ranges: list[list[int]] = []
    for c in chunks:
        if c.recovered != recovered:
            continue
        if ranges and ranges[-1][1] == c.chunk_id:
            ranges[-1][1] = c.chunk_id + 1
        else:
            ranges.append([c.chunk_id, c.chunk_id + 1])
    return ranges


# --------------------------------------------------------------------- #
# fsck                                                                   #
# --------------------------------------------------------------------- #


def _open(source) -> tuple[io.BufferedIOBase, bool]:
    if isinstance(source, (str, os.PathLike)):
        return open(Path(source), "rb"), True
    return source, False


def fsck(source: str | os.PathLike | io.BufferedIOBase) -> FsckReport:
    """Verify a PRIF or PRCK artifact (sniffed from its magic)."""
    fh, owns = _open(source)
    try:
        fh.seek(0)
        magic = fh.read(4)
        if magic == MAGIC:
            return fsck_prif(fh)
        if magic == _PRCK_MAGIC:
            return fsck_prck(fh)
        report = FsckReport(format="unknown")
        report.add("header", f"unrecognized magic {magic!r}", 0)
        return report
    finally:
        if owns:
            fh.close()


def fsck_prif(source: str | os.PathLike | io.BufferedIOBase) -> FsckReport:
    """Verify one PRIF stream end to end.

    Stage order mirrors trust order: trailer -> metadata CRC -> header +
    footer structure -> chunk-table geometry (all inside the reader's
    constructor), then record framing and every chunk's payload.  The
    first finding is therefore the first divergence a reader hits.
    """
    report = FsckReport(format="PRIF")
    fh, owns = _open(source)
    try:
        try:
            reader = PrimacyFileReader(fh)
        except CodecError as exc:
            report.add_error(exc, "metadata")
            return report
        report.n_chunks = reader.n_chunks
        _check_record_framing(fh, reader, report)
        for cid in range(reader.n_chunks):
            entry = reader.info.chunks[cid]
            try:
                reader._read_chunk(cid)
            except CodecError as exc:
                report.add_error(exc, f"chunk[{cid}]")
            else:
                report.n_chunks_ok += 1
        return report
    finally:
        if owns:
            fh.close()


def _check_record_framing(fh, reader: PrimacyFileReader, report: FsckReport) -> None:
    """Verify each record's varint length prefix against the chunk table.

    The reader never consults the prefixes (it seeks by table offsets),
    so a flipped prefix byte is invisible to reads -- but it makes the
    body unwalkable without the footer, which is exactly what salvage
    relies on.  fsck flags it.
    """
    pos = reader._header_len
    for cid, entry in enumerate(reader.info.chunks):
        fh.seek(pos)
        prefix = fh.read(entry.offset - pos)
        try:
            length, consumed = decode_uvarint(prefix, 0)
        except ValueError:
            report.add(
                f"prefix[{cid}]",
                f"record {cid} length prefix is undecodable",
                pos,
            )
            pos = entry.offset + entry.length
            continue
        if consumed != len(prefix) or length != entry.length:
            report.add(
                f"prefix[{cid}]",
                f"record {cid} length prefix says {length}, chunk table "
                f"says {entry.length}",
                pos,
            )
        pos = entry.offset + entry.length


def fsck_prck(source: str | os.PathLike | io.BufferedIOBase) -> FsckReport:
    """Verify a PRCK checkpoint: manifest, then every segment as PRIF."""
    # Imported here: checkpoint.manager imports repro.storage at module
    # load, so the reverse import must stay inside the function.
    from repro.checkpoint.manager import CheckpointReader

    report = FsckReport(format="PRCK")
    fh, owns = _open(source)
    try:
        try:
            reader = CheckpointReader(fh)
        except CodecError as exc:
            report.add_error(exc, "manifest")
            return report
        entries = reader._entries
        report.n_chunks = len(entries)
        for entry in entries:
            fh.seek(entry.offset)
            blob = fh.read(entry.length)
            label = f"segment[{entry.step}/{entry.name}]"
            if len(blob) != entry.length:
                report.add(label, "segment truncated", entry.offset)
                continue
            sub = fsck_prif(io.BytesIO(blob))
            if sub.ok:
                try:
                    reader.read(entry.step, entry.name)
                except CodecError as exc:
                    report.add_error(exc, label)
                    continue
                report.n_chunks_ok += 1
            else:
                for f in sub.findings:
                    offset = (
                        entry.offset + f.offset if f.offset is not None else None
                    )
                    report.add(f"{label}.{f.region}", f.message, offset)
        return report
    finally:
        if owns:
            fh.close()


# --------------------------------------------------------------------- #
# salvage                                                                #
# --------------------------------------------------------------------- #


def salvage_prif(
    source: str | os.PathLike | io.BufferedIOBase,
    dest: str | os.PathLike | io.BufferedIOBase | None = None,
) -> SalvageResult:
    """Recover whatever is still readable from a damaged PRIF file.

    Two strategies, tried in order:

    * **footer mode** -- the trailer/footer/CRC survived: decode every
      chunk independently through the table; a damaged record loses only
      itself and the reused-index chunks chained onto it (chunks after
      the damage with their own inline index still come back).
    * **scan mode** -- the metadata is gone (classic kill-mid-write
      truncation): walk the body forward from the header, record by
      record via the varint length prefixes, keeping everything that
      decodes; stop at the first record that does not.

    When ``dest`` is given the recovered bytes (chunks in order, then
    the tail if recovered) are written there -- atomically for paths.
    """
    fh, owns = _open(source)
    try:
        try:
            result = _salvage_with_footer(fh)
        except CodecError:
            result = _salvage_by_scan(fh)
        if dest is not None:
            _write_out(dest, result.data + result.tail)
        return result
    finally:
        if owns:
            fh.close()


def _salvage_with_footer(fh) -> SalvageResult:
    """Footer mode: the chunk table is trustworthy, records may not be."""
    reader = PrimacyFileReader(fh)  # raises CodecError if metadata damaged
    result = SalvageResult(mode="footer")
    parts: list[bytes] = []
    value_start = 0
    all_ok = True
    for cid in range(reader.n_chunks):
        entry = reader.info.chunks[cid]
        try:
            chunk = reader._read_chunk(cid)
        except CodecError as exc:
            all_ok = False
            result.chunks.append(
                ChunkStatus(
                    chunk_id=cid,
                    value_start=value_start,
                    n_values=entry.n_values,
                    recovered=False,
                    reason=str(exc),
                )
            )
        else:
            parts.append(chunk)
            result.chunks.append(
                ChunkStatus(
                    chunk_id=cid,
                    value_start=value_start,
                    n_values=entry.n_values,
                    recovered=True,
                )
            )
        value_start += entry.n_values
    result.data = b"".join(parts)
    result.tail = reader.info.tail
    result.complete = all_ok
    return result


def _salvage_by_scan(fh) -> SalvageResult:
    """Scan mode: no trustworthy footer; walk records forward.

    Maintains the index-reuse chain state exactly like a sequential
    reader, so reused-index records decode as long as their chain is
    unbroken.  The walk ends at the first record that fails to frame or
    decode -- past that point record boundaries cannot be trusted.
    """
    fh.seek(0, io.SEEK_END)
    size = fh.tell()
    header, header_len, compressor = _scan_header(fh, size)
    result = SalvageResult(mode="scan")
    word = compressor.config.word_bytes
    pos = header_len
    value_start = 0
    parts: list[bytes] = []
    current_index: FrequencyIndex | None = None
    cid = 0
    while pos < size:
        fh.seek(pos)
        prefix = fh.read(10)
        try:
            record_len, consumed = decode_uvarint(prefix, 0)
        except ValueError:
            break  # ran off the end / into the damaged region
        if record_len < 1 or pos + consumed + record_len > size:
            break
        fh.seek(pos + consumed)
        record = fh.read(record_len)
        try:
            chunk, current_index = compressor.decompress_chunk(
                record, current_index
            )
        except CodecError:
            break
        parts.append(chunk)
        result.chunks.append(
            ChunkStatus(
                chunk_id=cid,
                value_start=value_start,
                n_values=len(chunk) // word,
                recovered=True,
            )
        )
        value_start += len(chunk) // word
        pos += consumed + record_len
        cid += 1
    result.data = b"".join(parts)
    return result


def _scan_header(fh, size: int):
    """Incrementally parse the header for scan-mode salvage."""
    window = 4096
    while True:
        fh.seek(0)
        header = fh.read(min(window, size))
        try:
            config, header_len, _planned = decode_header(header)
        except TruncationError:
            if window >= size:
                raise
            window *= 2
            continue
        try:
            return header, header_len, PrimacyCompressor(config)
        except (KeyError, ValueError) as exc:
            raise CorruptionError(
                f"PRIF header names an unusable pipeline: {exc}",
                region="header",
            ) from exc


def _write_out(dest, data: bytes) -> None:
    if isinstance(dest, (str, os.PathLike)):
        from repro.util.durable import AtomicFile

        out = AtomicFile(Path(dest))
        try:
            out.write(data)
        except BaseException:
            out.discard()
            raise
        out.commit()
    else:
        dest.write(data)


# --------------------------------------------------------------------- #
# sharded archives                                                       #
# --------------------------------------------------------------------- #


@dataclass
class ArchiveReport:
    """fsck outcome for a sharded archive directory."""

    directory: str
    sealed: bool = False  # catalog present and structurally valid
    findings: list[Finding] = field(default_factory=list)  # archive level
    shards: dict[str, FsckReport] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when sealed and neither level found a violation."""
        return (
            self.sealed
            and not self.findings
            and all(r.ok for r in self.shards.values())
        )

    @property
    def n_chunks(self) -> int:
        """Chunks present across all shards."""
        return sum(r.n_chunks for r in self.shards.values())

    @property
    def n_chunks_ok(self) -> int:
        """Chunks verified end to end across all shards."""
        return sum(r.n_chunks_ok for r in self.shards.values())

    def add(self, region: str, message: str, offset: int | None = None) -> None:
        """Record one archive-level violation."""
        self.findings.append(
            Finding(region=region, message=message, offset=offset)
        )

    def add_error(self, exc: CodecError, fallback_region: str) -> None:
        """Record a typed decode error, reusing its location when present."""
        region = getattr(exc, "region", None) or fallback_region
        self.add(region, str(exc), getattr(exc, "offset", None))

    def summary(self) -> str:
        """Human-readable multi-line report."""
        n_bad = len(self.findings) + sum(
            len(r.findings) for r in self.shards.values()
        )
        lines = [
            "PRAC archive: "
            + ("clean" if self.ok else f"{n_bad} problem(s)")
            + ("" if self.sealed else " [UNSEALED]"),
            f"shards: {len(self.shards)}, chunks verified: "
            f"{self.n_chunks_ok}/{self.n_chunks}",
        ]
        lines += [str(f) for f in self.findings]
        for name in sorted(self.shards):
            sub = self.shards[name]
            if sub.ok:
                lines.append(f"  {name}: clean ({sub.n_chunks_ok} chunks)")
            else:
                lines.append(f"  {name}: {len(sub.findings)} problem(s)")
                lines += [f"    {f}" for f in sub.findings]
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-ready form composing every shard's fsck contract."""
        return {
            "format": "PRAC",
            "directory": self.directory,
            "sealed": self.sealed,
            "ok": self.ok,
            "n_chunks": self.n_chunks,
            "n_chunks_ok": self.n_chunks_ok,
            "findings": [f.to_dict() for f in self.findings],
            "shards": {
                name: report.to_dict()
                for name, report in sorted(self.shards.items())
            },
        }


def _fsck_shard_against_catalog(
    path: Path, shard_info, entries: list
) -> FsckReport:
    """fsck one shard plus the catalog/footer cross-checks."""
    report = FsckReport(format="PRIF")
    if not path.exists():
        report.add("file", f"shard file {path.name} is missing")
        report.n_chunks = len(entries)
        return report
    size = path.stat().st_size
    if size != shard_info.file_bytes:
        report.add(
            "file",
            f"shard is {size} bytes but the catalog recorded "
            f"{shard_info.file_bytes}",
        )
    report = _merge_into(report, fsck_prif(path))
    if not report.ok:
        return report
    # The shard's own footer and the catalog describe the same records;
    # any disagreement means one of them lies about extents.
    with open(path, "rb") as fh:
        chunks = PrimacyFileReader(fh).info.chunks
    if len(chunks) != len(entries):
        report.add(
            "catalog",
            f"catalog places {len(entries)} chunks here but the shard "
            f"footer has {len(chunks)}",
        )
        return report
    for i, (row, entry) in enumerate(zip(chunks, entries)):
        if (row.offset, row.length, row.n_values) != (
            entry.offset,
            entry.length,
            entry.n_values,
        ):
            report.add(
                "catalog",
                f"chunk {i}: catalog says (offset {entry.offset}, length "
                f"{entry.length}, {entry.n_values} values), shard footer "
                f"says (offset {row.offset}, length {row.length}, "
                f"{row.n_values} values)",
            )
    return report


def _merge_into(report: FsckReport, other: FsckReport) -> FsckReport:
    """Fold ``other``'s counters and findings into ``report``."""
    report.n_chunks += other.n_chunks
    report.n_chunks_ok += other.n_chunks_ok
    report.findings.extend(other.findings)
    return report


def fsck_archive(
    directory: str | os.PathLike, *, workers: int | None = None
) -> ArchiveReport:
    """Verify a sharded archive: catalog first, then shards in parallel.

    Shards are independent files, so their checks run concurrently on a
    thread pool (record decoding releases the GIL in the NumPy kernels).
    A missing or corrupt catalog marks the archive *unsealed*; every
    shard file present is still fscked individually so damage localizes.
    """
    from repro.storage.catalog import read_catalog

    directory = Path(directory)
    report = ArchiveReport(directory=str(directory))
    if not directory.is_dir():
        report.add("archive", f"{directory} is not a directory")
        return report
    for tmp in sorted(directory.glob("*.tmp")):
        report.add(
            "archive",
            f"leftover staging file {tmp.name} (writer crashed mid-pack)",
        )
    try:
        manifest = read_catalog(directory)
    except CodecError as exc:
        report.sealed = False
        report.add_error(exc, "catalog")
        shard_paths = sorted(directory.glob("shard-*.prif"))
        with ThreadPoolExecutor(
            max_workers=workers or min(8, max(1, len(shard_paths)))
        ) as pool:
            for path, sub in zip(
                shard_paths, pool.map(fsck_prif, shard_paths)
            ):
                report.shards[path.name] = sub
        return report
    report.sealed = True
    per_shard: list[list] = [[] for _ in manifest.shards]
    for entry in manifest.entries:
        per_shard[entry.shard].append(entry)
    jobs = [
        (directory / info.name, info, per_shard[sid])
        for sid, info in enumerate(manifest.shards)
    ]
    with ThreadPoolExecutor(
        max_workers=workers or min(8, max(1, len(jobs)))
    ) as pool:
        for (path, info, _entries), sub in zip(
            jobs,
            pool.map(
                lambda job: _fsck_shard_against_catalog(*job), jobs
            ),
        ):
            report.shards[path.name] = sub
    return report


@dataclass
class ArchiveSalvage:
    """What salvage pulled out of a (possibly unsealed) archive."""

    mode: str  # "catalog" (sealed) or "per-shard" (unsealed)
    sealed: bool
    shards: dict[str, SalvageResult] = field(default_factory=dict)
    chunks: list[ChunkStatus] = field(default_factory=list)  # global order
    data: bytes = b""  # catalog mode: global reassembly
    tail: bytes = b""
    complete: bool = False

    @property
    def n_recovered(self) -> int:
        """Chunks recovered (global in catalog mode, summed otherwise)."""
        if self.mode == "catalog":
            return sum(1 for c in self.chunks if c.recovered)
        return sum(r.n_recovered for r in self.shards.values())

    @property
    def values_recovered(self) -> int:
        """Values recovered."""
        if self.mode == "catalog":
            return sum(c.n_values for c in self.chunks if c.recovered)
        return sum(r.values_recovered for r in self.shards.values())

    def summary(self) -> str:
        """Human-readable multi-line report."""
        n_total = (
            len(self.chunks)
            if self.mode == "catalog"
            else sum(len(r.chunks) for r in self.shards.values())
        )
        lines = [
            f"archive salvage ({self.mode} mode"
            + ("" if self.sealed else ", UNSEALED")
            + f"): {self.n_recovered}/{n_total} chunks, "
            f"{self.values_recovered} values"
            + (" (complete)" if self.complete else ""),
        ]
        for name in sorted(self.shards):
            sub = self.shards[name]
            lines.append(
                f"  {name}: {sub.n_recovered}/{len(sub.chunks)} chunks "
                f"({sub.mode} mode)"
            )
        for c in self.chunks:
            if not c.recovered:
                lines.append(f"  chunk {c.chunk_id}: LOST ({c.reason})")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-ready form composing every shard's salvage contract."""
        return {
            "format": "PRAC",
            "mode": self.mode,
            "sealed": self.sealed,
            "complete": self.complete,
            "n_chunks": len(self.chunks),
            "n_recovered": self.n_recovered,
            "values_recovered": self.values_recovered,
            "bytes_recovered": len(self.data) + len(self.tail),
            "recovered_ranges": _chunk_ranges(self.chunks, recovered=True),
            "lost_ranges": _chunk_ranges(self.chunks, recovered=False),
            "shards": {
                name: result.to_dict()
                for name, result in sorted(self.shards.items())
            },
        }


def salvage_archive(
    directory: str | os.PathLike,
    dest: str | os.PathLike | None = None,
) -> ArchiveSalvage:
    """Recover whatever is readable from a sharded archive.

    With a valid catalog, every global chunk is read straight off its
    catalog extent and decoded independently (records are
    self-contained under ``PER_CHUNK``), so damage in one shard loses
    only that shard's chunks; ``dest`` receives the reassembled bytes.

    Without a catalog (crashed writer), each published shard salvages
    on its own -- global interleave order died with the writer, so the
    result composes per-shard outcomes and ``dest`` (a directory)
    receives one ``<shard>.bin`` per shard.
    """
    from repro.storage.catalog import read_catalog

    directory = Path(directory)
    try:
        manifest = read_catalog(directory)
    except CodecError:
        result = ArchiveSalvage(mode="per-shard", sealed=False)
        for path in sorted(directory.glob("shard-*.prif")):
            result.shards[path.name] = salvage_prif(path)
        if dest is not None:
            dest = Path(dest)
            dest.mkdir(parents=True, exist_ok=True)
            for name, sub in result.shards.items():
                _write_out(dest / f"{name}.bin", sub.data + sub.tail)
        return result

    result = ArchiveSalvage(mode="catalog", sealed=True)
    try:
        compressor = PrimacyCompressor(manifest.config)
    except (KeyError, ValueError) as exc:
        raise CorruptionError(
            f"PRAC catalog names an unusable pipeline: {exc}",
            region="catalog-header",
        ) from exc
    handles: dict[int, io.BufferedReader] = {}
    parts: list[bytes] = []
    value_start = 0
    all_ok = True
    try:
        for gid, entry in enumerate(manifest.entries):
            status_kwargs = dict(
                chunk_id=gid,
                value_start=value_start,
                n_values=entry.n_values,
            )
            value_start += entry.n_values
            try:
                fh = handles.get(entry.shard)
                if fh is None:
                    fh = open(
                        directory / manifest.shards[entry.shard].name, "rb"
                    )
                    handles[entry.shard] = fh
                fh.seek(entry.offset)
                record = fh.read(entry.length)
                if len(record) != entry.length:
                    raise TruncationError(
                        "record truncated",
                        region=f"shard[{entry.shard}]",
                        offset=entry.offset,
                    )
                chunk, _ = compressor.decompress_chunk(record, None)
            except (CodecError, OSError) as exc:
                all_ok = False
                result.chunks.append(
                    ChunkStatus(
                        recovered=False, reason=str(exc), **status_kwargs
                    )
                )
            else:
                parts.append(chunk)
                result.chunks.append(
                    ChunkStatus(recovered=True, **status_kwargs)
                )
    finally:
        for fh in handles.values():
            fh.close()
    result.data = b"".join(parts)
    result.tail = manifest.tail
    result.complete = all_ok
    if dest is not None:
        _write_out(dest, result.data + result.tail)
    return result
