"""Throughput benchmark harness behind ``primacy bench``.

Measures the paper's three headline metrics -- compression ratio (CR),
compression throughput (CTP), and decompression throughput (DTP), both
in MB/s of *original* data -- over the synthetic dataset registry, and
compares a run against a stored baseline so CI can gate on regressions.

The result dict is plain JSON (written to ``results/BENCH_obs.json`` by
the CI job); :func:`compare` returns human-readable regression messages
for every metric that fell more than ``threshold`` below the baseline.
Throughput comparisons are only as stable as the machine they run on,
so committed baselines should be conservative floors, not hot-cache
bests; the ratio comparison is fully deterministic.
"""

from __future__ import annotations

import time

from repro.core.primacy import PrimacyCompressor, PrimacyConfig
from repro.datasets import dataset_names, generate_bytes

__all__ = [
    "SCHEMA_VERSION",
    "DEFAULT_THRESHOLD",
    "measure_dataset",
    "run_bench",
    "compare",
]

SCHEMA_VERSION = 1

#: Relative drop (vs baseline) above which a metric counts as regressed.
DEFAULT_THRESHOLD = 0.10

#: Metrics compared against a baseline; all are "bigger is better".
_GATED_METRICS = ("compression_ratio", "compress_mbps", "decompress_mbps")


def measure_dataset(
    name: str,
    n_values: int,
    config: PrimacyConfig,
    *,
    repeats: int = 1,
    seed: int = 0,
    workers: int = 1,
) -> dict:
    """CR/CTP/DTP for one synthetic dataset.

    Keeps the best (minimum) time over ``repeats`` runs per direction --
    the least noisy estimator of the true cost.  The round trip is
    verified; a silently lossy pipeline must fail the bench, not post a
    fast number.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    data = generate_bytes(name, n_values, seed)

    def _compress_once():
        if workers > 1:
            from repro.parallel import ParallelCompressor

            with ParallelCompressor(config, workers=workers) as comp:
                return comp.compress(data)
        return PrimacyCompressor(config).compress(data)

    best_ct = float("inf")
    out = b""
    for _ in range(repeats):
        t0 = time.perf_counter()
        out, _stats = _compress_once()
        best_ct = min(best_ct, time.perf_counter() - t0)

    best_dt = float("inf")
    restored = b""
    for _ in range(repeats):
        t0 = time.perf_counter()
        restored = PrimacyCompressor(config).decompress(out)
        best_dt = min(best_dt, time.perf_counter() - t0)
    if restored != data:
        raise RuntimeError(f"bench round trip failed for dataset {name!r}")

    n = len(data)
    return {
        "original_bytes": n,
        "compressed_bytes": len(out),
        "compression_ratio": n / len(out) if out else 1.0,
        "compress_mbps": n / 1e6 / best_ct if best_ct > 0 else float("inf"),
        "decompress_mbps": n / 1e6 / best_dt if best_dt > 0 else float("inf"),
    }


def run_bench(
    datasets: list[str] | None = None,
    *,
    n_values: int = 1 << 15,
    config: PrimacyConfig | None = None,
    repeats: int = 1,
    seed: int = 0,
    workers: int = 1,
) -> dict:
    """Benchmark every requested dataset; returns the result document."""
    config = config or PrimacyConfig()
    names = datasets if datasets is not None else dataset_names()
    unknown = sorted(set(names) - set(dataset_names()))
    if unknown:
        raise ValueError(f"unknown dataset(s): {', '.join(unknown)}")
    results = {
        name: measure_dataset(
            name, n_values, config,
            repeats=repeats, seed=seed, workers=workers,
        )
        for name in names
    }
    return {
        "schema": SCHEMA_VERSION,
        "config": {
            "codec": config.codec,
            "chunk_bytes": config.chunk_bytes,
            "n_values": n_values,
            "seed": seed,
            "workers": workers,
            "repeats": repeats,
        },
        "results": results,
    }


def compare(
    current: dict, baseline: dict, threshold: float = DEFAULT_THRESHOLD
) -> list[str]:
    """Regression messages for metrics > ``threshold`` below baseline.

    Only datasets present in both documents are compared, so a baseline
    can cover a subset (or an old superset) of the current registry.
    An empty list means the gate passes.
    """
    if threshold < 0:
        raise ValueError("threshold must be >= 0")
    regressions: list[str] = []
    base_results = baseline.get("results", {})
    for name, cur in sorted(current.get("results", {}).items()):
        base = base_results.get(name)
        if base is None:
            continue
        for metric in _GATED_METRICS:
            if metric not in base or metric not in cur:
                continue
            ref = float(base[metric])
            got = float(cur[metric])
            if ref <= 0:
                continue
            drop = (ref - got) / ref
            if drop > threshold:
                regressions.append(
                    f"{name}: {metric} regressed {drop:.1%} "
                    f"(baseline {ref:.3f}, current {got:.3f})"
                )
    return regressions
