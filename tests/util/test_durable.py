"""Tests for atomic publication and transient-I/O retry (repro.util.durable)."""

from __future__ import annotations

import errno
import io

import numpy as np
import pytest

from repro.checkpoint import CheckpointWriter
from repro.core import PrimacyConfig
from repro.storage import PrimacyFileReader, PrimacyFileWriter
from repro.util.durable import AtomicFile, retry_io


class TestRetryIO:
    def test_passes_through_result(self):
        assert retry_io(lambda: 42) == 42

    def test_retries_transient_then_succeeds(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError(errno.EINTR, "interrupted")
            return "ok"

        assert retry_io(flaky, backoff=0.0001) == "ok"
        assert len(calls) == 3

    def test_persistent_transient_error_eventually_raises(self):
        def always():
            raise OSError(errno.EAGAIN, "busy")

        with pytest.raises(OSError) as exc_info:
            retry_io(always, attempts=3, backoff=0.0001)
        assert exc_info.value.errno == errno.EAGAIN

    def test_non_transient_error_raises_immediately(self):
        calls = []

        def broken():
            calls.append(1)
            raise OSError(errno.ENOSPC, "disk full")

        with pytest.raises(OSError):
            retry_io(broken, backoff=0.0001)
        assert len(calls) == 1

    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError):
            retry_io(lambda: 1, attempts=0)


class TestAtomicFile:
    def test_commit_publishes_exact_bytes(self, tmp_path):
        target = tmp_path / "out.bin"
        af = AtomicFile(target)
        af.write(b"hello ")
        af.write(b"world")
        assert not target.exists()  # nothing published before commit
        assert af.tmp_path.exists()
        af.commit()
        assert target.read_bytes() == b"hello world"
        assert not af.tmp_path.exists()

    def test_discard_leaves_target_untouched(self, tmp_path):
        target = tmp_path / "out.bin"
        target.write_bytes(b"previous complete artifact")
        af = AtomicFile(target)
        af.write(b"half-written garbage")
        af.discard()
        assert target.read_bytes() == b"previous complete artifact"
        assert not af.tmp_path.exists()

    def test_commit_replaces_previous_version(self, tmp_path):
        target = tmp_path / "out.bin"
        target.write_bytes(b"old")
        af = AtomicFile(target)
        af.write(b"new")
        af.commit()
        assert target.read_bytes() == b"new"

    def test_commit_is_idempotent(self, tmp_path):
        af = AtomicFile(tmp_path / "x")
        af.write(b"1")
        af.commit()
        af.commit()
        af.discard()  # no-op after commit
        assert (tmp_path / "x").read_bytes() == b"1"


class TestWriterAtomicity:
    """Writers must stage in .tmp and never finalize a failed stream."""

    def test_prif_writer_stages_then_publishes(self, tmp_path):
        target = tmp_path / "data.pri"
        with PrimacyFileWriter(target, PrimacyConfig(chunk_bytes=4096)) as w:
            w.write(b"\x01\x02\x03\x04\x05\x06\x07\x08" * 64)
            assert not target.exists()
            assert (tmp_path / "data.pri.tmp").exists()
        assert target.exists()
        assert not (tmp_path / "data.pri.tmp").exists()
        assert PrimacyFileReader(target).read_all() == (
            b"\x01\x02\x03\x04\x05\x06\x07\x08" * 64
        )

    def test_prif_writer_exception_aborts(self, tmp_path):
        target = tmp_path / "data.pri"
        with pytest.raises(RuntimeError):
            with PrimacyFileWriter(target) as w:
                w.write(b"\x00" * 128)
                raise RuntimeError("simulation crashed")
        assert not target.exists()
        assert not (tmp_path / "data.pri.tmp").exists()

    def test_prif_writer_durable_off_writes_in_place(self, tmp_path):
        target = tmp_path / "data.pri"
        with PrimacyFileWriter(target, durable=False) as w:
            w.write(b"\x00" * 64)
            assert target.exists()  # in-place, no staging
        assert PrimacyFileReader(target).read_all() == b"\x00" * 64

    def test_checkpoint_writer_exception_preserves_old_checkpoint(
        self, tmp_path
    ):
        target = tmp_path / "state.prck"
        with CheckpointWriter(target, PrimacyConfig(chunk_bytes=4096)) as w:
            w.write_step(0, {"t": np.arange(32, dtype=np.float64)})
        before = target.read_bytes()
        with pytest.raises(RuntimeError):
            with CheckpointWriter(target, PrimacyConfig(chunk_bytes=4096)) as w:
                w.write_step(1, {"t": np.arange(32, dtype=np.float64)})
                raise RuntimeError("killed")
        assert target.read_bytes() == before  # old checkpoint intact
        assert not (tmp_path / "state.prck.tmp").exists()

    def test_file_object_targets_are_unaffected(self):
        buf = io.BytesIO()
        with PrimacyFileWriter(buf, durable=True) as w:  # durable ignored
            w.write(b"\x00" * 64)
        assert PrimacyFileReader(io.BytesIO(buf.getvalue())).read_all() == (
            b"\x00" * 64
        )
