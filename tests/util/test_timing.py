"""Tests for repro.util.timing."""

from __future__ import annotations

import time

import pytest

from repro.util.timing import ThroughputTimer, Timer


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_accumulates_across_entries(self):
        t = Timer()
        for _ in range(2):
            with t:
                time.sleep(0.005)
        assert t.elapsed >= 0.009


class TestThroughputTimer:
    def test_mb_per_s(self):
        t = ThroughputTimer()
        t.add(2_000_000, 1.0)
        assert t.mb_per_s == pytest.approx(2.0)
        assert t.bytes_per_s == pytest.approx(2_000_000)

    def test_accumulates_samples(self):
        t = ThroughputTimer()
        t.add(100, 0.5)
        t.add(300, 0.5)
        assert t.samples == 2
        assert t.total_bytes == 400
        assert t.bytes_per_s == pytest.approx(400)

    def test_zero_time_is_zero_rate(self):
        assert ThroughputTimer().mb_per_s == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ThroughputTimer().add(-1, 1.0)

    def test_time_context(self):
        t = ThroughputTimer()
        with t.time(1000):
            time.sleep(0.002)
        assert t.total_bytes == 1000
        assert t.total_seconds >= 0.001
