"""Tests for repro.util.bitio: bit packing/unpacking invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.bitio import BitReader, BitWriter, pack_bits, unpack_bits


def _reference_pack(codes, lengths) -> bytes:
    """Bit-by-bit reference implementation (slow, obviously correct)."""
    bits = []
    for code, length in zip(codes, lengths):
        for j in range(length - 1, -1, -1):
            bits.append((code >> j) & 1)
    out = bytearray()
    for i in range(0, len(bits), 8):
        byte = 0
        for b in bits[i : i + 8]:
            byte = (byte << 1) | b
        byte <<= max(0, 8 - len(bits[i : i + 8]))
        out.append(byte)
    return bytes(out)


class TestPackBits:
    def test_empty(self):
        assert pack_bits(np.zeros(0, np.uint64), np.zeros(0, np.int64)) == b""

    def test_single_byte_alignment(self):
        out = pack_bits(np.array([0b1011], np.uint64), np.array([4], np.int64))
        assert out == bytes([0b10110000])

    def test_multibyte_codeword(self):
        out = pack_bits(np.array([0x1FF], np.uint64), np.array([9], np.int64))
        assert out == bytes([0xFF, 0x80])

    def test_zero_length_codes_are_skipped(self):
        codes = np.array([0b1, 0b0, 0b1], np.uint64)
        lengths = np.array([1, 0, 1], np.int64)
        assert pack_bits(codes, lengths) == bytes([0b11000000])

    def test_matches_reference_on_mixed_lengths(self):
        rng = np.random.default_rng(5)
        lengths = rng.integers(1, 24, 500)
        codes = np.array(
            [rng.integers(0, 1 << l) for l in lengths], dtype=np.uint64
        )
        assert pack_bits(codes, lengths.astype(np.int64)) == _reference_pack(
            codes.tolist(), lengths.tolist()
        )

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            pack_bits(np.zeros(3, np.uint64), np.zeros(2, np.int64))

    def test_rejects_overlong_codes(self):
        with pytest.raises(ValueError):
            pack_bits(np.array([1], np.uint64), np.array([60], np.int64))

    def test_rejects_negative_lengths(self):
        with pytest.raises(ValueError):
            pack_bits(np.array([1], np.uint64), np.array([-1], np.int64))

    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, (1 << 20) - 1)),
            max_size=200,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_property_matches_reference(self, pairs):
        lengths = np.array([l for l, _ in pairs], dtype=np.int64)
        codes = np.array(
            [c & ((1 << l) - 1) if l else 0 for l, c in pairs], dtype=np.uint64
        )
        assert pack_bits(codes, lengths) == _reference_pack(
            codes.tolist(), lengths.tolist()
        )


class TestUnpackBits:
    def test_roundtrip_with_packbits(self):
        data = bytes([0b10110010, 0b01000000])
        bits = unpack_bits(data)
        assert bits.tolist() == [1, 0, 1, 1, 0, 0, 1, 0, 0, 1, 0, 0, 0, 0, 0, 0]

    def test_nbits_truncation(self):
        assert unpack_bits(b"\xff", nbits=3).tolist() == [1, 1, 1]

    def test_nbits_too_large_raises(self):
        with pytest.raises(ValueError):
            unpack_bits(b"\xff", nbits=9)


class TestBitWriterReader:
    def test_roundtrip_scalar_writes(self):
        w = BitWriter()
        w.write(0b101, 3)
        w.write(0b1, 1)
        w.write(0xAB, 8)
        data = w.getvalue()
        r = BitReader(data)
        assert r.read(3) == 0b101
        assert r.read(1) == 0b1
        assert r.read(8) == 0xAB

    def test_bit_length_tracks_writes(self):
        w = BitWriter()
        w.write(1, 1)
        w.write_array(np.array([3, 7], np.uint64), np.array([2, 3], np.int64))
        assert w.bit_length == 6

    def test_write_rejects_overflowing_code(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write(0b100, 2)

    def test_reader_eof(self):
        r = BitReader(b"\xf0")
        r.read(8)
        with pytest.raises(EOFError):
            r.read(1)

    def test_reader_remaining(self):
        r = BitReader(b"\x00\x00")
        assert r.remaining() == 16
        r.read(5)
        assert r.remaining() == 11

    def test_empty_writer(self):
        assert BitWriter().getvalue() == b""
