"""Tests for repro.util.checksum against the zlib reference implementation."""

from __future__ import annotations

import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.checksum import adler32, crc32


class TestCrc32:
    @pytest.mark.parametrize(
        "data",
        [b"", b"a", b"hello world", bytes(range(256)), b"\x00" * 1000],
    )
    def test_matches_zlib(self, data):
        assert crc32(data) == zlib.crc32(data)

    def test_incremental_matches(self):
        data = b"the quick brown fox"
        part = crc32(data[:7])
        assert crc32(data[7:], part) == zlib.crc32(data)

    def test_ndarray_input(self):
        arr = np.arange(100, dtype=np.uint8)
        assert crc32(arr) == zlib.crc32(arr.tobytes())

    @given(st.binary(max_size=512))
    @settings(max_examples=100, deadline=None)
    def test_property_matches_zlib(self, data):
        assert crc32(data) == zlib.crc32(data)


class TestAdler32:
    @pytest.mark.parametrize(
        "data",
        [b"", b"a", b"Wikipedia", bytes(range(256)) * 10, b"\xff" * 100000],
    )
    def test_matches_zlib(self, data):
        assert adler32(data) == zlib.adler32(data)

    def test_incremental_matches(self):
        data = bytes(range(256)) * 100
        part = adler32(data[:1000])
        assert adler32(data[1000:], part) == zlib.adler32(data)

    def test_large_block_boundary(self):
        # Exercises the multi-block accumulator path.
        data = np.random.default_rng(0).integers(
            0, 256, (1 << 20) + 17, dtype=np.uint8
        ).tobytes()
        assert adler32(data) == zlib.adler32(data)

    @given(st.binary(max_size=2048))
    @settings(max_examples=100, deadline=None)
    def test_property_matches_zlib(self, data):
        assert adler32(data) == zlib.adler32(data)
