"""Tests for repro.util.varint."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.varint import (
    decode_uvarint,
    decode_uvarint_array,
    encode_uvarint,
    encode_uvarint_array,
)


class TestScalar:
    @pytest.mark.parametrize(
        "value,encoded",
        [
            (0, b"\x00"),
            (1, b"\x01"),
            (127, b"\x7f"),
            (128, b"\x80\x01"),
            (300, b"\xac\x02"),
            (16384, b"\x80\x80\x01"),
        ],
    )
    def test_known_encodings(self, value, encoded):
        assert encode_uvarint(value) == encoded
        decoded, pos = decode_uvarint(encoded)
        assert decoded == value
        assert pos == len(encoded)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_uvarint(-1)

    def test_truncated_raises(self):
        with pytest.raises(ValueError):
            decode_uvarint(b"\x80")

    def test_overlong_raises(self):
        with pytest.raises(ValueError):
            decode_uvarint(b"\xff" * 11)

    def test_offset_decoding(self):
        data = b"\xff" + encode_uvarint(300)
        value, pos = decode_uvarint(data, offset=1)
        assert value == 300
        assert pos == len(data)

    @given(st.integers(0, 2**63 - 1))
    def test_property_roundtrip(self, value):
        decoded, _ = decode_uvarint(encode_uvarint(value))
        assert decoded == value


class TestArray:
    def test_roundtrip(self):
        values = np.array([0, 1, 127, 128, 1 << 40], dtype=np.int64)
        blob = encode_uvarint_array(values)
        out, pos = decode_uvarint_array(blob, len(values))
        assert out.tolist() == values.tolist()
        assert pos == len(blob)

    def test_empty(self):
        assert encode_uvarint_array(np.zeros(0, np.int64)) == b""
        out, pos = decode_uvarint_array(b"", 0)
        assert out.size == 0 and pos == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_uvarint_array(np.array([-5]))

    @given(st.lists(st.integers(0, 2**40), max_size=50))
    def test_property_roundtrip(self, values):
        arr = np.array(values, dtype=np.int64)
        blob = encode_uvarint_array(arr)
        out, _ = decode_uvarint_array(blob, len(values))
        assert out.tolist() == values
