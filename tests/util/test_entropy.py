"""Tests for repro.util.entropy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.util.entropy import (
    bit_position_probability,
    byte_entropy,
    byte_histogram,
    normalized_entropy,
    top_byte_fraction,
)


class TestByteEntropy:
    def test_constant_stream_has_zero_entropy(self):
        assert byte_entropy(b"\x42" * 1000) == 0.0

    def test_uniform_stream_approaches_eight_bits(self):
        data = bytes(range(256)) * 64
        assert byte_entropy(data) == pytest.approx(8.0)

    def test_two_symbol_stream(self):
        assert byte_entropy(b"ab" * 500) == pytest.approx(1.0)

    def test_empty_is_zero(self):
        assert byte_entropy(b"") == 0.0

    def test_normalized_entropy_range(self):
        data = np.random.default_rng(0).integers(0, 256, 4096, dtype=np.uint8)
        assert 0.9 < normalized_entropy(data.tobytes()) <= 1.0

    def test_accepts_non_uint8_arrays(self):
        # float view should hash the underlying bytes.
        arr = np.ones(100, dtype="<f8")
        assert byte_entropy(arr) < 2.0


class TestHistogramAndTopByte:
    def test_histogram_counts(self):
        hist = byte_histogram(b"aabbbc")
        assert hist[ord("a")] == 2
        assert hist[ord("b")] == 3
        assert hist[ord("c")] == 1
        assert hist.sum() == 6

    def test_top_byte_fraction(self):
        assert top_byte_fraction(b"aaab") == pytest.approx(0.75)

    def test_top_byte_empty(self):
        assert top_byte_fraction(b"") == 0.0


class TestBitPositionProbability:
    def test_all_zero_words(self):
        vals = np.zeros(100, dtype="<f8")
        probs = bit_position_probability(vals)
        assert probs.shape == (64,)
        assert np.all(probs == 1.0)

    def test_sign_bit_position_zero(self):
        # Big-endian bit 0 must be the float64 sign bit.
        vals = np.full(64, -1.0)
        probs_neg = bit_position_probability(vals)
        vals_pos = np.full(64, 1.0)
        probs_pos = bit_position_probability(vals_pos)
        assert probs_neg[0] == 1.0 and probs_pos[0] == 1.0
        # Mixed signs make the sign bit a coin flip.
        mixed = np.concatenate([vals, vals_pos])
        assert bit_position_probability(mixed)[0] == pytest.approx(0.5)

    def test_random_mantissa_is_coinflip(self):
        rng = np.random.default_rng(0)
        # Fixed sign/exponent, fully random 52-bit mantissas.
        bits = rng.integers(0, 1 << 52, 50000, dtype=np.uint64)
        vals = (bits | np.uint64(0x3FF0000000000000)).view("<f8")
        probs = bit_position_probability(vals)
        assert np.all(probs[:12] > 0.99)  # sign+exponent constant
        assert np.all(probs[-32:] < 0.52)  # mantissa tail random

    def test_raw_bytes_require_word_size(self):
        with pytest.raises(ValueError):
            bit_position_probability(np.zeros(16, dtype=np.uint8))

    def test_raw_bytes_with_word_size(self):
        probs = bit_position_probability(np.zeros(16, dtype=np.uint8), word_bytes=4)
        assert probs.shape == (32,)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            bit_position_probability(np.zeros(0, dtype="<f8"))

    def test_misaligned_bytes_raise(self):
        with pytest.raises(ValueError):
            bit_position_probability(np.zeros(7, dtype=np.uint8), word_bytes=4)
