"""Fault-injection suite for the PRIF/PRCK storage stack.

Contract under test (the fuzz contract from DESIGN.md):

* every single-byte flip of an artifact either raises a *typed*
  :class:`CodecError` subclass or leaves the decoded output bit-exact --
  never an ``IndexError``, ``struct.error``, or silent garbage;
* every truncation raises a typed error from an untouched reader;
* ``fsck`` localizes the damage; ``salvage`` recovers the reachable
  prefix of a truncated file;
* the parallel read path honors the same contract as the serial one;
* SIGKILL during a durable write never leaves a file a reader accepts
  as complete (marked ``faults``; excluded from the default run).
"""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.checkpoint import CheckpointReader, CheckpointWriter
from repro.compressors import CodecError
from repro.core import PrimacyCompressor, PrimacyConfig
from repro.datasets import generate_bytes
from repro.parallel import ParallelDecompressor
from repro.storage import PrimacyFileReader, PrimacyFileWriter, fsck, salvage_prif

from tests.faults.injector import (
    flip_byte,
    iter_byte_flips,
    run_until_killed,
    truncation_points,
)

_CFG = PrimacyConfig(chunk_bytes=512, checksum=True)


@pytest.fixture(scope="module")
def prif_case():
    """A small multi-chunk PRIF file: (payload, blob, header_len, entries)."""
    payload = generate_bytes("obs_temp", 1536, seed=7)
    buf = io.BytesIO()
    with PrimacyFileWriter(buf, _CFG) as w:
        w.write(payload)
    blob = buf.getvalue()
    reader = PrimacyFileReader(io.BytesIO(blob))
    assert reader.n_chunks >= 3, "fixture must span several chunks"
    return payload, blob, reader._header_len, reader.info.chunks


@pytest.fixture(scope="module")
def prck_case():
    """A small PRCK checkpoint: (variables, blob)."""
    variables = {
        "temp": np.linspace(0.0, 1.0, 48, dtype=np.float32).reshape(6, 8),
        "count": np.arange(32, dtype=np.int64),
    }
    buf = io.BytesIO()
    with CheckpointWriter(buf, PrimacyConfig(chunk_bytes=256)) as w:
        w.write_step(0, variables)
    return variables, buf.getvalue()


class TestPrifByteFlips:
    def test_every_flip_detected_or_harmless(self, prif_case):
        """No single-byte flip may corrupt output or leak an untyped error."""
        payload, blob, _, _ = prif_case
        for offset, damaged in iter_byte_flips(blob):
            try:
                got = PrimacyFileReader(io.BytesIO(damaged)).read_all()
            except CodecError:
                continue  # typed rejection: contract satisfied
            assert got == payload, f"silent corruption from flip @ {offset}"

    def test_every_flip_flagged_by_fsck(self, prif_case):
        """Every byte of the file is covered by some integrity check."""
        _, blob, _, _ = prif_case
        for offset, damaged in iter_byte_flips(blob):
            report = fsck(io.BytesIO(damaged))
            assert not report.ok, f"fsck missed flip @ {offset}"
            assert report.first_divergence is not None

    def test_payload_flips_localized_to_chunk(self, prif_case):
        """Flips inside record payloads are pinned to that chunk."""
        _, blob, _, entries = prif_case
        for cid, entry in enumerate(entries):
            offset = entry.offset + entry.length // 2
            report = fsck(io.BytesIO(flip_byte(blob, offset)))
            regions = {f.region for f in report.findings}
            assert f"chunk[{cid}]" in regions, (
                f"flip @ {offset} in chunk {cid} reported as {regions}"
            )


class TestPrifTruncation:
    def test_every_truncation_raises_typed_error(self, prif_case):
        _, blob, header_len, _ = prif_case
        for cut in truncation_points(blob, body_start=header_len):
            with pytest.raises(CodecError):
                PrimacyFileReader(io.BytesIO(blob[:cut]))

    def test_salvage_recovers_prefix_at_every_truncation(self, prif_case):
        """Scan-mode salvage returns exactly the fully-present records."""
        payload, blob, header_len, entries = prif_case
        word = _CFG.word_bytes
        for cut in truncation_points(blob, stride=13, body_start=header_len):
            if cut < header_len:
                with pytest.raises(CodecError):
                    salvage_prif(io.BytesIO(blob[:cut]))
                continue
            result = salvage_prif(io.BytesIO(blob[:cut]))
            assert result.mode == "scan"
            expect_values = sum(
                e.n_values for e in entries if e.offset + e.length <= cut
            )
            assert result.values_recovered == expect_values
            assert result.data == payload[: expect_values * word]


class TestPrckFaults:
    def test_every_flip_detected_or_harmless(self, prck_case):
        variables, blob = prck_case
        for offset, damaged in iter_byte_flips(blob):
            try:
                reader = CheckpointReader(io.BytesIO(damaged))
                got = {name: reader.read(0, name) for name in variables}
            except CodecError:
                continue
            for name, array in variables.items():
                assert np.array_equal(got[name], array), (
                    f"silent corruption of {name!r} from flip @ {offset}"
                )

    def test_flips_flagged_by_fsck(self, prck_case):
        _, blob = prck_case
        for offset, damaged in iter_byte_flips(blob, stride=7):
            report = fsck(io.BytesIO(damaged))
            assert report.format == "PRCK" or offset < 4
            assert not report.ok, f"fsck missed flip @ {offset}"

    def test_truncations_raise_typed_errors(self, prck_case):
        _, blob = prck_case
        for cut in truncation_points(blob, stride=11):
            with pytest.raises(CodecError):
                CheckpointReader(io.BytesIO(blob[:cut]))


class TestParallelFaults:
    def test_sampled_flips_detected_or_harmless_in_pool(self):
        """Workers ship typed CodecErrors home; no EngineError leakage."""
        payload = generate_bytes("obs_temp", 8192, seed=3)
        cfg = PrimacyConfig(chunk_bytes=2048, checksum=True)
        blob, _ = PrimacyCompressor(cfg).compress(payload)
        stride = max(1, len(blob) // 40)
        with ParallelDecompressor(cfg, workers=2) as dec:
            assert dec.decompress(blob) == payload  # pool sanity
            for offset, damaged in iter_byte_flips(blob, stride=stride):
                try:
                    got = dec.decompress(damaged)
                except CodecError:
                    continue
                assert got == payload, f"silent corruption from flip @ {offset}"


_KILL_SCRIPT = """
import numpy as np
from pathlib import Path
from repro.checkpoint import CheckpointWriter
from repro.core import PrimacyConfig

target = Path({target!r})
ready = Path({ready!r})
with CheckpointWriter(target, PrimacyConfig(chunk_bytes=4096)) as w:
    for step in range(100000):
        w.write_step(step, {{
            "temp": np.full(4096, step, dtype=np.float64),
            "vel": np.arange(4096, dtype=np.float64) * step,
        }})
        if step == 2:
            ready.touch()
"""


@pytest.mark.faults
class TestKillMidWrite:
    @pytest.mark.parametrize("kill_after", [0.0, 0.01, 0.05])
    def test_sigkill_never_publishes_partial_checkpoint(
        self, tmp_path, kill_after
    ):
        """The target name is either absent or a complete checkpoint."""
        target = tmp_path / f"state_{kill_after}.prck"
        ready = tmp_path / f"ready_{kill_after}"
        code = run_until_killed(
            _KILL_SCRIPT.format(target=str(target), ready=str(ready)),
            ready_file=ready,
            kill_after=kill_after,
        )
        assert code == -9
        if target.exists():  # only possible if close() won the race
            reader = CheckpointReader(target)
            for step in reader.steps():
                for name in reader.variables(step):
                    reader.read(step, name)
        else:
            # The staged temp file must never be mistaken for the target.
            leftovers = list(tmp_path.glob(target.name + "*"))
            assert all(p.name.endswith(".tmp") for p in leftovers)
