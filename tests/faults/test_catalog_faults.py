"""Fault-injection suite for sharded archives (repro.storage.catalog).

Contract under test: a writer killed at *any* point leaves a directory
that is either a complete, sealed archive or detectably unsealed --
never a catalog describing bytes that are not on disk.  Shards that
were already published before the kill remain individually valid and
salvage byte-identically.

The kill tests run a real pack in a subprocess and SIGKILL it at a
deterministic point (between shard commits), reproducing the
crash-mid-parallel-pack scenario without mocking the filesystem.
Marked ``faults``; excluded from the default run.
"""

from __future__ import annotations

import pytest

from repro.compressors import CodecError
from repro.datasets import generate_bytes
from repro.storage import fsck_archive, salvage_archive
from repro.storage.catalog import (
    CATALOG_NAME,
    ShardedArchiveReader,
    read_catalog,
    shard_name,
)

from tests.faults.injector import run_until_killed

CHUNK_BYTES = 4096
N_VALUES = 16384  # 32 chunks of float64
N_SHARDS = 4
SEED = 23

_KILL_BETWEEN_COMMITS_SCRIPT = """
import time
from pathlib import Path
from repro.core import PrimacyConfig
from repro.datasets import generate_bytes
from repro.storage import ShardedArchiveWriter
from repro.storage.writer import PrimacyFileWriter

target = Path({target!r})
ready = Path({ready!r})
payload = generate_bytes("obs_temp", {n_values}, seed={seed})

# Stall the pack right after the {committed}-th shard publishes, so the
# SIGKILL lands between shard commits -- the classic torn parallel pack.
orig_close = PrimacyFileWriter.close
state = {{"commits": 0}}

def stalling_close(self):
    orig_close(self)
    state["commits"] += 1
    if state["commits"] == {committed}:
        ready.touch()
        time.sleep(120)

PrimacyFileWriter.close = stalling_close

with ShardedArchiveWriter(
    target, PrimacyConfig(chunk_bytes={chunk_bytes}),
    shards={shards}, workers=1,
) as writer:
    writer.write(payload)
"""

_KILL_ANYWHERE_SCRIPT = """
from pathlib import Path
from repro.core import PrimacyConfig
from repro.datasets import generate_bytes
from repro.storage import ShardedArchiveWriter

target = Path({target!r})
ready = Path({ready!r})
payload = generate_bytes("obs_temp", {n_values}, seed={seed})

for round_no in range(100000):
    directory = target / str(round_no)
    with ShardedArchiveWriter(
        directory, PrimacyConfig(chunk_bytes={chunk_bytes}),
        shards={shards}, workers=1,
    ) as writer:
        writer.write(payload)
    if round_no == 1:
        ready.touch()
"""


def _payload() -> bytes:
    return generate_bytes("obs_temp", N_VALUES, seed=SEED)


def _shard_slice(payload: bytes, sid: int, shards: int) -> bytes:
    """The round-robin interleave dealt to shard ``sid``."""
    n_chunks = len(payload) // CHUNK_BYTES
    return b"".join(
        payload[g * CHUNK_BYTES : (g + 1) * CHUNK_BYTES]
        for g in range(sid, n_chunks, shards)
    )


@pytest.mark.faults
class TestKillMidParallelPack:
    @pytest.mark.parametrize("committed", [1, 2, 3])
    def test_sigkill_between_shard_commits(self, tmp_path, committed):
        """Kill after ``committed`` shards published, before the seal."""
        target = tmp_path / f"arc_{committed}"
        ready = tmp_path / f"ready_{committed}"
        code = run_until_killed(
            _KILL_BETWEEN_COMMITS_SCRIPT.format(
                target=str(target),
                ready=str(ready),
                n_values=N_VALUES,
                seed=SEED,
                chunk_bytes=CHUNK_BYTES,
                shards=N_SHARDS,
                committed=committed,
            ),
            ready_file=ready,
            timeout=120,
        )
        assert code == -9
        payload = _payload()

        # 1. The archive is detected as unsealed everywhere.
        assert not (target / CATALOG_NAME).exists()
        with pytest.raises(CodecError, match="unsealed"):
            read_catalog(target)
        with pytest.raises(CodecError):
            ShardedArchiveReader(target)

        # 2. fsck localizes the damage: unsealed archive, the published
        #    shards individually clean, the unpublished ones only .tmp.
        report = fsck_archive(target)
        assert not report.sealed and not report.ok
        published = {shard_name(sid) for sid in range(committed)}
        assert set(report.shards) == published
        assert all(report.shards[name].ok for name in published)
        tmp_findings = [
            f for f in report.findings if "leftover staging" in f.message
        ]
        assert len(tmp_findings) == N_SHARDS - committed

        # 3. Salvage recovers every published shard byte-identically.
        result = salvage_archive(target, tmp_path / f"out_{committed}")
        assert result.mode == "per-shard" and not result.sealed
        assert set(result.shards) == published
        for sid in range(committed):
            expected = _shard_slice(payload, sid, N_SHARDS)
            assert result.shards[shard_name(sid)].data == expected
            recovered = (
                tmp_path / f"out_{committed}" / f"{shard_name(sid)}.bin"
            ).read_bytes()
            assert recovered == expected

    @pytest.mark.parametrize("kill_after", [0.0, 0.02])
    def test_sigkill_anywhere_never_publishes_torn_archive(
        self, tmp_path, kill_after
    ):
        """Wherever the kill lands: sealed-and-complete, or unsealed."""
        target = tmp_path / f"arcs_{kill_after}"
        ready = tmp_path / f"ready_{kill_after}"
        code = run_until_killed(
            _KILL_ANYWHERE_SCRIPT.format(
                target=str(target),
                ready=str(ready),
                n_values=N_VALUES,
                seed=SEED,
                chunk_bytes=CHUNK_BYTES,
                shards=N_SHARDS,
            ),
            ready_file=ready,
            kill_after=kill_after,
            timeout=120,
        )
        assert code == -9
        payload = _payload()
        for directory in sorted(p for p in target.iterdir() if p.is_dir()):
            if (directory / CATALOG_NAME).exists():
                report = fsck_archive(directory)
                assert report.ok, (
                    f"{directory.name}: sealed archive fails fsck:\n"
                    + report.summary()
                )
                with ShardedArchiveReader(directory) as reader:
                    assert reader.read_all() == payload
            else:
                with pytest.raises(CodecError):
                    ShardedArchiveReader(directory)
