"""Reusable fault-injection primitives for the storage fault suite.

Three damage models, matching how storage actually fails:

* **bit rot** -- :func:`iter_byte_flips` / :func:`flip_byte` produce
  every (or a sampled subset of) single-byte corruption of an artifact;
* **truncation** -- :func:`truncation_points` enumerates cut points,
  guaranteed to include every varint-prefix boundary (the spots where a
  naive length-prefixed walk is most easily fooled);
* **kill mid-write** -- :func:`run_until_killed` runs a writer script in
  a subprocess and SIGKILLs it partway through, reproducing the classic
  crash-during-checkpoint scenario without mocking the filesystem.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from collections.abc import Iterator
from pathlib import Path

from repro.util.varint import decode_uvarint

__all__ = [
    "flip_byte",
    "iter_byte_flips",
    "truncation_points",
    "varint_boundaries",
    "run_until_killed",
]


def flip_byte(data: bytes, offset: int, mask: int = 0xFF) -> bytes:
    """Return ``data`` with the byte at ``offset`` XORed by ``mask``."""
    if not 0 <= offset < len(data):
        raise ValueError(f"offset {offset} outside [0, {len(data)})")
    if not 1 <= mask <= 0xFF:
        raise ValueError("mask must actually change the byte")
    out = bytearray(data)
    out[offset] ^= mask
    return bytes(out)


def iter_byte_flips(
    data: bytes, *, stride: int = 1, mask: int = 0xFF
) -> Iterator[tuple[int, bytes]]:
    """Yield ``(offset, corrupted_copy)`` for every ``stride``-th byte.

    ``stride=1`` is the exhaustive sweep; larger strides sample evenly
    across the artifact (the first and last byte are always included so
    magic and trailer damage is never skipped).
    """
    offsets = list(range(0, len(data), stride))
    if offsets and offsets[-1] != len(data) - 1:
        offsets.append(len(data) - 1)
    for offset in offsets:
        yield offset, flip_byte(data, offset, mask)


def varint_boundaries(data: bytes, start: int) -> list[int]:
    """Offsets of every record boundary in a varint length-prefixed walk.

    Starting at ``start`` (first record prefix), returns the offset of
    each prefix, each record start, and each record end -- the exact
    positions where truncation interacts with framing.  The walk stops
    as soon as a prefix fails to decode or runs past the buffer.
    """
    points: list[int] = []
    pos = start
    while pos < len(data):
        points.append(pos)
        try:
            length, consumed = decode_uvarint(data, pos)
        except ValueError:
            break
        points.append(pos + consumed)
        pos += consumed + length
        points.append(pos)
    return sorted({p for p in points if p <= len(data)})


def truncation_points(
    data: bytes, *, stride: int = 1, body_start: int = 0
) -> list[int]:
    """Cut lengths to test: sampled evenly plus every varint boundary.

    ``stride=1`` returns every prefix length ``0..len(data)-1``.  With a
    larger stride the sweep is sampled, but the framing-critical offsets
    from :func:`varint_boundaries` (and ``body_start`` itself) are always
    kept, as are the final ``TRAILER``-sized cuts where metadata dies
    byte by byte.
    """
    n = len(data)
    cuts = set(range(0, n, stride))
    cuts.update(range(max(0, n - 20), n))  # trailer dies byte by byte
    if body_start:
        cuts.update(p for p in varint_boundaries(data, body_start) if p < n)
        cuts.add(body_start)
    return sorted(c for c in cuts if 0 <= c < n)


def run_until_killed(
    script: str,
    *,
    ready_file: Path,
    kill_after: float = 0.0,
    timeout: float = 30.0,
) -> int:
    """Run ``script`` with the current interpreter, SIGKILL it mid-run.

    The script must create ``ready_file`` once it has started the work
    that should be interrupted (so the kill lands *during* the write,
    not before it).  ``kill_after`` adds an extra delay after readiness,
    letting callers sweep the kill across different write phases.
    Returns the process's exit code (negative signal number).
    """
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen([sys.executable, "-c", script], env=env)
    try:
        deadline = time.monotonic() + timeout
        while not ready_file.exists():
            if proc.poll() is not None:
                raise AssertionError(
                    f"writer exited ({proc.returncode}) before signalling "
                    "readiness -- kill would not land mid-write"
                )
            if time.monotonic() > deadline:
                raise AssertionError("writer never signalled readiness")
            time.sleep(0.001)
        if kill_after:
            time.sleep(kill_after)
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=timeout)
        return proc.returncode
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=timeout)
