"""Bench harness and the ``primacy bench --check`` regression gate."""

from __future__ import annotations

import json

import pytest

from repro.benchmark import DEFAULT_THRESHOLD, compare, run_bench
from repro.cli import main
from repro.core.primacy import PrimacyConfig

_FAST = dict(n_values=2048, config=PrimacyConfig(chunk_bytes=8192))


@pytest.fixture(scope="module")
def document() -> dict:
    return run_bench(["obs_temp"], **_FAST)


class TestRunBench:
    def test_document_shape(self, document):
        assert document["schema"] == 1
        row = document["results"]["obs_temp"]
        assert row["original_bytes"] == 2048 * 8
        assert row["compression_ratio"] > 0
        assert row["compress_mbps"] > 0
        assert row["decompress_mbps"] > 0

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            run_bench(["no_such_dataset"], **_FAST)

    def test_ratio_is_deterministic(self, document):
        again = run_bench(["obs_temp"], **_FAST)
        assert (
            again["results"]["obs_temp"]["compression_ratio"]
            == document["results"]["obs_temp"]["compression_ratio"]
        )


class TestCompare:
    def _doctored(self, document, factor, metric="compress_mbps"):
        baseline = json.loads(json.dumps(document))
        baseline["results"]["obs_temp"][metric] *= factor
        return baseline

    def test_identical_documents_pass(self, document):
        assert compare(document, document) == []

    def test_injected_slowdown_detected(self, document):
        # Baseline claims 2x the throughput => current run reads as a
        # 50% regression, far past the 10% gate.
        baseline = self._doctored(document, 2.0)
        regressions = compare(document, baseline, DEFAULT_THRESHOLD)
        assert len(regressions) == 1
        assert "compress_mbps" in regressions[0]
        assert "obs_temp" in regressions[0]

    def test_drop_within_threshold_passes(self, document):
        baseline = self._doctored(document, 1.05)
        assert compare(document, baseline, DEFAULT_THRESHOLD) == []

    def test_ratio_regression_detected(self, document):
        baseline = self._doctored(document, 1.5, metric="compression_ratio")
        regressions = compare(document, baseline)
        assert any("compression_ratio" in r for r in regressions)

    def test_datasets_missing_from_baseline_are_skipped(self, document):
        assert compare(document, {"results": {}}) == []


class TestBenchCli:
    def test_check_fails_on_injected_slowdown(self, document, tmp_path, capsys):
        """Acceptance: the gate exits non-zero on a >10% slowdown."""
        baseline = json.loads(json.dumps(document))
        for row in baseline["results"].values():
            row["compress_mbps"] *= 100.0
            row["decompress_mbps"] *= 100.0
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(baseline))
        code = main([
            "bench", "--datasets", "obs_temp", "--n-values", "2048",
            "--chunk-bytes", "8192", "--baseline", str(path), "--check",
        ])
        assert code != 0
        assert "REGRESSION" in capsys.readouterr().err

    def test_check_passes_against_generous_baseline(self, tmp_path, capsys):
        out = tmp_path / "run.json"
        assert main([
            "bench", "--datasets", "obs_temp", "--n-values", "2048",
            "--chunk-bytes", "8192", "--output", str(out),
        ]) == 0
        document = json.loads(out.read_text())
        for row in document["results"].values():
            row["compress_mbps"] /= 100.0
            row["decompress_mbps"] /= 100.0
        base = tmp_path / "floor.json"
        base.write_text(json.dumps(document))
        assert main([
            "bench", "--datasets", "obs_temp", "--n-values", "2048",
            "--chunk-bytes", "8192", "--baseline", str(base), "--check",
        ]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_check_requires_baseline(self, capsys):
        assert main(["bench", "--check"]) == 2
        assert "requires --baseline" in capsys.readouterr().err
