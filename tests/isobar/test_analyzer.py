"""Tests for the ISOBAR analyzer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.isobar import IsobarAnalyzer, IsobarConfig


def _matrix(*columns: np.ndarray) -> np.ndarray:
    return np.column_stack(columns).astype(np.uint8)


@pytest.fixture
def rng():
    return np.random.default_rng(10)


class TestClassification:
    def test_constant_column_is_compressible(self, rng):
        const = np.zeros(8192, dtype=np.uint8)
        noise = rng.integers(0, 256, 8192, dtype=np.uint8)
        analysis = IsobarAnalyzer().analyze(_matrix(const, noise))
        assert analysis.reports[0].compressible
        assert not analysis.reports[1].compressible

    def test_skewed_column_is_compressible(self, rng):
        skewed = rng.zipf(2.0, 8192).clip(0, 255).astype(np.uint8)
        analysis = IsobarAnalyzer().analyze(_matrix(skewed))
        assert analysis.reports[0].compressible

    def test_uniform_column_is_incompressible(self, rng):
        uniform = rng.integers(0, 256, 8192, dtype=np.uint8)
        analysis = IsobarAnalyzer().analyze(_matrix(uniform))
        assert not analysis.reports[0].compressible

    def test_compressible_fraction(self, rng):
        cols = [np.zeros(4096, dtype=np.uint8)] * 3 + [
            rng.integers(0, 256, 4096, dtype=np.uint8)
        ]
        analysis = IsobarAnalyzer().analyze(_matrix(*cols))
        assert analysis.compressible_fraction == pytest.approx(0.75)

    def test_column_sets_partition(self, rng):
        cols = [
            np.zeros(4096, dtype=np.uint8),
            rng.integers(0, 256, 4096, dtype=np.uint8),
            np.full(4096, 7, dtype=np.uint8),
        ]
        analysis = IsobarAnalyzer().analyze(_matrix(*cols))
        comp = set(analysis.compressible_columns.tolist())
        incomp = set(analysis.incompressible_columns.tolist())
        assert comp | incomp == {0, 1, 2}
        assert comp & incomp == set()


class TestSampling:
    def test_small_input_not_sampled(self):
        m = np.zeros((100, 2), dtype=np.uint8)
        sampled = IsobarAnalyzer().sample(m)
        assert sampled.shape[0] == 100

    def test_large_input_sampled_to_budget(self):
        cfg = IsobarConfig(sample_rows=512)
        m = np.zeros((100000, 2), dtype=np.uint8)
        sampled = IsobarAnalyzer(cfg).sample(m)
        assert sampled.shape[0] == 512

    def test_sampling_is_deterministic(self, rng):
        m = rng.integers(0, 256, (50000, 3), dtype=np.uint8)
        a = IsobarAnalyzer().sample(m)
        b = IsobarAnalyzer().sample(m)
        assert np.array_equal(a, b)

    def test_sampled_verdict_matches_full_scan(self, rng):
        # A strongly skewed column must classify the same under sampling.
        col = rng.zipf(3.0, 200000).clip(0, 255).astype(np.uint8)
        full = IsobarAnalyzer(IsobarConfig(sample_rows=10**9)).analyze(
            _matrix(col)
        )
        sampled = IsobarAnalyzer(IsobarConfig(sample_rows=2048)).analyze(
            _matrix(col)
        )
        assert (
            full.reports[0].compressible == sampled.reports[0].compressible
        )


class TestValidation:
    def test_rejects_non_uint8(self):
        with pytest.raises(ValueError):
            IsobarAnalyzer().analyze(np.zeros((4, 4), dtype=np.int32))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            IsobarAnalyzer().analyze(np.zeros(16, dtype=np.uint8))

    def test_report_metadata(self, rng):
        m = rng.integers(0, 4, (1000, 2), dtype=np.uint8)
        analysis = IsobarAnalyzer().analyze(m)
        assert analysis.n_rows == 1000
        assert analysis.n_cols == 2
        assert all(r.entropy_bits >= 0 for r in analysis.reports)
        assert all(0 <= r.top_byte_fraction <= 1 for r in analysis.reports)
