"""Tests for the bit-plane ISOBAR partitioner."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors import CodecError, get_codec
from repro.core import PrimacyCompressor, PrimacyConfig
from repro.isobar.bitplane import BitplanePartitioner


@pytest.fixture
def partitioner():
    return BitplanePartitioner(get_codec("pyzlib"))


def _mixed_matrix(n_rows: int, seed: int = 0) -> np.ndarray:
    """Columns: constant, random, and 'top 2 bits fixed, low 6 random'."""
    rng = np.random.default_rng(seed)
    mixed = (0b11 << 6) | rng.integers(0, 64, n_rows, dtype=np.uint8)
    return np.column_stack(
        [
            np.full(n_rows, 0x3F, dtype=np.uint8),
            rng.integers(0, 256, n_rows, dtype=np.uint8),
            mixed,
        ]
    )


class TestAnalysis:
    def test_constant_planes_compressible(self, partitioner):
        m = _mixed_matrix(8192)
        analysis = partitioner.analyze(m)
        assert analysis.n_planes == 24
        # Column 0 constant: all 8 planes compressible.
        assert analysis.compressible[:8].all()
        # Column 1 random: no plane compressible.
        assert not analysis.compressible[8:16].any()
        # Column 2: exactly the top 2 planes.
        assert analysis.compressible[16:18].all()
        assert not analysis.compressible[18:24].any()

    def test_dominance_bounds(self, partitioner):
        m = _mixed_matrix(4096)
        analysis = partitioner.analyze(m)
        assert np.all(analysis.dominance >= 0.5 - 1e-9)
        assert np.all(analysis.dominance <= 1.0 + 1e-9)

    def test_finer_than_byte_columns(self, partitioner):
        """The headline: partial-byte regularity is extracted at bit level."""
        m = _mixed_matrix(8192)
        analysis = partitioner.analyze(m)
        # 10 of 24 planes compressible even though only 1 of 3 byte
        # columns is (the byte analyzer would see column 2 as noise).
        assert int(analysis.compressible.sum()) == 10

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            BitplanePartitioner(get_codec("null"), dominance_threshold=0.3)


class TestRoundtrip:
    def test_mixed_matrix(self, partitioner):
        m = _mixed_matrix(5000)
        assert np.array_equal(partitioner.decompress(partitioner.compress(m)), m)

    def test_empty_shapes(self, partitioner):
        for shape in [(0, 4), (10, 0), (0, 0)]:
            m = np.zeros(shape, dtype=np.uint8)
            out = partitioner.decompress(partitioner.compress(m))
            assert out.shape == shape

    def test_single_row(self, partitioner):
        m = np.array([[1, 2, 3, 4, 5, 6]], dtype=np.uint8)
        assert np.array_equal(partitioner.decompress(partitioner.compress(m)), m)

    @given(
        n_rows=st.integers(1, 200),
        n_cols=st.integers(1, 8),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_roundtrip(self, n_rows, n_cols, seed):
        rng = np.random.default_rng(seed)
        m = rng.integers(0, 256, (n_rows, n_cols), dtype=np.uint8)
        partitioner = BitplanePartitioner(get_codec("pyzlib"))
        assert np.array_equal(partitioner.decompress(partitioner.compress(m)), m)

    def test_truncated_rejected(self, partitioner):
        blob = partitioner.compress(_mixed_matrix(2000))
        with pytest.raises((CodecError, ValueError)):
            partitioner.decompress(blob[: len(blob) // 3])

    def test_quantized_planes_compress_hard(self, partitioner):
        rng = np.random.default_rng(1)
        # 3 random bits per byte, 5 constant-zero bit planes.
        m = (rng.integers(0, 8, (8192, 4), dtype=np.uint8) << 5)
        blob = partitioner.compress(m)
        assert len(blob) < m.size * 0.55


class TestPrimacyIntegration:
    def test_bit_mode_roundtrip_and_cross_decode(self, obs_temp_small):
        cfg = PrimacyConfig(chunk_bytes=32 * 1024, isobar_granularity="bit")
        pc = PrimacyCompressor(cfg)
        out, stats = pc.compress(obs_temp_small)
        assert pc.decompress(out) == obs_temp_small
        # Container is self-describing: a byte-mode compressor decodes it.
        assert PrimacyCompressor().decompress(out) == obs_temp_small
        assert 0.0 <= stats.alpha2 <= 1.0

    def test_bit_mode_extracts_quantized_mantissa(self):
        from repro.datasets import generate_bytes

        data = generate_bytes("num_plasma", 8192, seed=7)
        byte_out, _ = PrimacyCompressor(
            PrimacyConfig(chunk_bytes=len(data))
        ).compress(data)
        bit_out, _ = PrimacyCompressor(
            PrimacyConfig(chunk_bytes=len(data), isobar_granularity="bit")
        ).compress(data)
        # Quantization leaves sub-byte zero bit runs: bit mode matches or
        # beats byte mode here.
        assert len(bit_out) <= len(byte_out) * 1.02

    def test_granularity_validation(self):
        with pytest.raises(ValueError):
            PrimacyConfig(isobar_granularity="nibble")
