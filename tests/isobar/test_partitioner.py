"""Tests for the ISOBAR partitioner container."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors import CodecError, get_codec
from repro.isobar import IsobarPartitioner


@pytest.fixture
def partitioner():
    return IsobarPartitioner(get_codec("pyzlib"))


def _mixed_matrix(n_rows: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.column_stack(
        [
            np.zeros(n_rows, dtype=np.uint8),  # compressible
            rng.integers(0, 256, n_rows, dtype=np.uint8),  # incompressible
            rng.zipf(2.5, n_rows).clip(0, 255).astype(np.uint8),  # skewed
            rng.integers(0, 256, n_rows, dtype=np.uint8),  # incompressible
        ]
    )


class TestRoundtrip:
    def test_mixed_matrix(self, partitioner):
        m = _mixed_matrix(5000)
        blob = partitioner.compress(m)
        assert np.array_equal(partitioner.decompress(blob), m)

    def test_all_compressible(self, partitioner):
        m = np.zeros((1000, 6), dtype=np.uint8)
        blob = partitioner.compress(m)
        assert np.array_equal(partitioner.decompress(blob), m)
        assert len(blob) < m.size / 10

    def test_all_incompressible(self, partitioner):
        rng = np.random.default_rng(1)
        m = rng.integers(0, 256, (4096, 6), dtype=np.uint8)
        blob = partitioner.compress(m)
        assert np.array_equal(partitioner.decompress(blob), m)
        # Raw group dominates; near-zero overhead.
        assert len(blob) <= m.size + 64

    def test_single_row(self, partitioner):
        m = np.array([[1, 2, 3]], dtype=np.uint8)
        assert np.array_equal(partitioner.decompress(partitioner.compress(m)), m)

    def test_zero_columns(self, partitioner):
        m = np.zeros((10, 0), dtype=np.uint8)
        out = partitioner.decompress(partitioner.compress(m))
        assert out.shape == (10, 0)

    @given(
        n_rows=st.integers(1, 300),
        n_cols=st.integers(1, 8),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_roundtrip(self, n_rows, n_cols, seed):
        rng = np.random.default_rng(seed)
        m = rng.integers(0, 256, (n_rows, n_cols), dtype=np.uint8)
        partitioner = IsobarPartitioner(get_codec("pyzlib"))
        assert np.array_equal(partitioner.decompress(partitioner.compress(m)), m)


class TestBehaviour:
    def test_avoids_compressing_noise(self):
        """The ISOBAR claim: skipping incompressible columns is faster."""
        import time

        rng = np.random.default_rng(2)
        m = rng.integers(0, 256, (40000, 6), dtype=np.uint8)
        part = IsobarPartitioner(get_codec("pyzlib"))
        t0 = time.perf_counter()
        part.compress(m)
        t_isobar = time.perf_counter() - t0

        codec = get_codec("pyzlib")
        t0 = time.perf_counter()
        codec.compress(np.ascontiguousarray(m.T).tobytes())
        t_vanilla = time.perf_counter() - t0
        assert t_isobar < t_vanilla

    def test_measured_alpha_sigma(self):
        part = IsobarPartitioner(get_codec("pyzlib"))
        m = _mixed_matrix(8192)
        alpha2, sigma_lo = part.measured_alpha_sigma(m)
        assert 0.0 < alpha2 < 1.0
        assert 0.0 < sigma_lo <= 1.1

    def test_alpha_sigma_empty(self):
        part = IsobarPartitioner(get_codec("pyzlib"))
        alpha2, sigma_lo = part.measured_alpha_sigma(
            np.zeros((0, 6), dtype=np.uint8)
        )
        assert alpha2 == 0.0 and sigma_lo == 1.0


class TestValidation:
    def test_rejects_bad_dtype(self, partitioner):
        with pytest.raises(ValueError):
            partitioner.compress(np.zeros((4, 4), dtype=np.float64))

    def test_truncated_container(self, partitioner):
        blob = partitioner.compress(_mixed_matrix(2000))
        with pytest.raises((CodecError, ValueError)):
            partitioner.decompress(blob[: len(blob) // 3])
