"""Shared fixtures: cached synthetic data so the suite stays fast."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import generate_bytes


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture(scope="session")
def smooth_doubles() -> bytes:
    """Smooth scientific-ish float64 stream (compressible everywhere)."""
    r = np.random.default_rng(1)
    vals = np.cumsum(r.normal(0, 0.01, 16384)) + 300.0
    return vals.astype("<f8").tobytes()


@pytest.fixture(scope="session")
def noisy_doubles() -> bytes:
    """Hard-to-compress float64 stream (random mantissas)."""
    r = np.random.default_rng(2)
    vals = r.normal(300.0, 5.0, 16384) * (1 + r.normal(0, 1e-3, 16384))
    return vals.astype("<f8").tobytes()


@pytest.fixture(scope="session")
def random_bytes() -> bytes:
    return np.random.default_rng(3).integers(0, 256, 65536, dtype=np.uint8).tobytes()


@pytest.fixture(scope="session")
def obs_temp_small() -> bytes:
    return generate_bytes("obs_temp", 8192, seed=11)


@pytest.fixture(scope="session")
def num_plasma_small() -> bytes:
    return generate_bytes("num_plasma", 8192, seed=11)
