"""Unit tests for the metrics registry."""

from __future__ import annotations

import pickle

import pytest

from repro.obs.metrics import (
    DEFAULT_RATIO_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestPrimitives:
    def test_counter_accumulates(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_gauge_last_value_wins(self):
        g = Gauge()
        g.set(1.0)
        g.set(-4.0)
        assert g.value == -4.0

    def test_histogram_bucket_assignment(self):
        h = Histogram((1.0, 10.0))
        for v in (0.5, 1.0, 5.0, 100.0):
            h.observe(v)
        # le-semantics: 1.0 lands in the first bucket, 100.0 overflows.
        assert h.counts == [2, 1, 1]
        assert h.samples == 4
        assert h.total == pytest.approx(106.5)
        assert h.mean == pytest.approx(106.5 / 4)

    def test_histogram_requires_sorted_boundaries(self):
        with pytest.raises(ValueError):
            Histogram((2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(())


class TestRegistry:
    def test_same_name_and_labels_share_instrument(self):
        reg = MetricsRegistry()
        reg.counter("x", codec="a").inc()
        reg.counter("x", codec="a").inc()
        reg.counter("x", codec="b").inc()
        assert reg.counter("x", codec="a").value == 2
        assert reg.counter("x", codec="b").value == 1

    def test_kinds_are_independent_namespaces(self):
        reg = MetricsRegistry()
        reg.counter("x").inc(3)
        reg.gauge("x").set(9.0)
        assert reg.counter("x").value == 3
        assert reg.gauge("x").value == 9.0

    def test_snapshot_is_picklable_and_merge_adds(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(7.0)
        reg.histogram("h", boundaries=DEFAULT_RATIO_BUCKETS).observe(1.5)
        snap = pickle.loads(pickle.dumps(reg.snapshot()))

        other = MetricsRegistry()
        other.counter("c").inc(1)
        other.merge(snap)
        assert other.counter("c").value == 4
        assert other.gauge("g").value == 7.0
        h = other.histogram("h", boundaries=DEFAULT_RATIO_BUCKETS)
        assert h.samples == 1
        assert h.total == pytest.approx(1.5)

    def test_merge_twice_doubles_counters(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        snap = reg.snapshot()
        fresh = MetricsRegistry()
        fresh.merge(snap)
        fresh.merge(snap)
        assert fresh.counter("c").value == 4

    def test_merge_mismatched_histogram_bounds_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("h", boundaries=(1.0, 2.0)).observe(0.5)
        snap = reg.snapshot()
        other = MetricsRegistry()
        other.histogram("h", boundaries=(5.0, 6.0))
        with pytest.raises(ValueError):
            other.merge(snap)

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(1.0)
        assert len(reg)
        reg.reset()
        assert len(reg) == 0
