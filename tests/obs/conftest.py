"""Every obs test leaves the global instrumentation state clean."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _clean_obs_state():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()
