"""Cross-process metric aggregation and PoolStats accounting accuracy."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.compressors.base import CodecError
from repro.core.primacy import PrimacyConfig
from repro.parallel.engine import KIND_COMPRESS, KIND_DECOMPRESS, ParallelEngine


@pytest.fixture(scope="module")
def payload() -> bytes:
    rng = np.random.default_rng(21)
    return np.cumsum(rng.normal(size=24 * 1024)).astype("<f8").tobytes()


def _chunks(payload: bytes, size: int = 16 * 1024) -> list[bytes]:
    return [payload[i : i + size] for i in range(0, len(payload), size)]


CFG = PrimacyConfig(chunk_bytes=16 * 1024)


class TestWorkerSnapshotMerge:
    def test_worker_codec_counters_reach_global_registry(self, payload):
        obs.enable()
        with ParallelEngine(CFG, workers=2) as engine:
            results = list(
                engine.map_ordered(KIND_COMPRESS, _chunks(payload), CFG)
            )
        assert len(results) == len(_chunks(payload))
        counters = obs.report.collect()["counters"]
        # The codec runs only inside worker processes here, so these
        # totals can only exist if worker snapshots merged back.
        assert counters["codec.compress.calls{codec=pyzlib}"] == len(results)
        assert counters["primacy.compress.chunks"] == len(results)
        assert counters["engine.tasks"] == len(results)
        assert counters["engine.completed"] == len(results)
        gauges = obs.report.collect()["gauges"]
        assert 0.0 <= gauges["engine.busy_fraction"] <= 1.0
        assert gauges["engine.workers"] == 2.0

    def test_disabled_engine_run_records_nothing(self, payload):
        with ParallelEngine(CFG, workers=2) as engine:
            list(engine.map_ordered(KIND_COMPRESS, _chunks(payload), CFG))
        assert len(obs.registry()) == 0
        assert obs.recorder().spans() == []


class TestPoolStatsAccuracy:
    def test_unpopped_results_are_accounted_at_close(self, payload):
        """Results drained during close used to vanish from the stats."""
        engine = ParallelEngine(CFG, workers=2)
        try:
            ids = [
                engine.submit(KIND_COMPRESS, chunk, CFG)
                for chunk in _chunks(payload)
            ]
            # Pop only the first result; the rest complete unobserved.
            engine.pop(ids[0])
        finally:
            engine.close()
        stats = engine.stats
        assert stats.tasks == len(ids)
        assert stats.completed == len(ids)
        assert stats.result_bytes > 0
        assert stats.worker_seconds > 0.0

    def test_completed_matches_tasks_for_popped_stream(self, payload):
        with ParallelEngine(CFG, workers=2) as engine:
            n = len(list(
                engine.map_ordered(KIND_COMPRESS, _chunks(payload), CFG)
            ))
            stats = engine.stats
            assert stats.tasks == n
            assert stats.completed == n

    def test_failed_tasks_ship_real_compute_seconds(self):
        """A worker failure used to report 0.0 seconds of compute."""
        garbage = bytes(bytearray(range(256)) * 256)
        engine = ParallelEngine(CFG, workers=2)
        try:
            task = engine.submit(KIND_DECOMPRESS, garbage, CFG)
            with pytest.raises(CodecError):
                engine.pop(task)
            assert engine.stats.worker_seconds > 0.0
            assert engine.stats.completed == 1
        finally:
            engine.close()

    def test_inline_fallback_counts_completed(self, payload):
        engine = ParallelEngine(CFG, workers=1)
        try:
            chunk = _chunks(payload)[0]
            engine.run_inline(KIND_COMPRESS, chunk, CFG)
            task = engine.submit(KIND_COMPRESS, chunk, CFG)
            engine.pop(task)
            assert engine.stats.tasks == 2
            assert engine.stats.inline_tasks == 2
            assert engine.stats.completed == 2
        finally:
            engine.close()

    def test_summary_includes_completed(self, payload):
        with ParallelEngine(CFG, workers=2) as engine:
            list(engine.map_ordered(KIND_COMPRESS, _chunks(payload), CFG))
            summary = engine.stats.summary()
        assert summary["completed"] == summary["tasks"]
        assert set(summary) >= {
            "workers", "tasks", "inline_tasks", "completed", "shm_bytes",
            "pickled_bytes", "result_bytes", "submit_seconds",
            "queue_wait_seconds", "worker_seconds", "drain_seconds",
            "busy_fraction",
        }

    def test_obs_enabled_close_folds_and_resets_engine_registry(self, payload):
        obs.enable()
        engine = ParallelEngine(CFG, workers=2)
        list(engine.map_ordered(KIND_COMPRESS, _chunks(payload), CFG))
        engine.close()
        # Folded into the global registry exactly once...
        before = obs.report.collect()["counters"]["engine.tasks"]
        engine.close()  # idempotent: no double-merge
        after = obs.report.collect()["counters"]["engine.tasks"]
        assert before == after
        # ...and the per-engine registry starts fresh.
        assert engine.stats.tasks == 0
