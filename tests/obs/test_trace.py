"""Unit tests for tracing spans."""

from __future__ import annotations

import json
import os
import threading

from repro import obs
from repro.obs import trace
from repro.obs.trace import _NULL_SPAN, Span, TraceRecorder


class TestSpanContextManager:
    def test_disabled_span_is_shared_noop(self):
        assert obs.span("anything") is _NULL_SPAN
        assert obs.span("other", k=1) is _NULL_SPAN
        assert trace.recorder().spans() == []

    def test_enabled_span_records(self):
        obs.enable()
        with obs.span("stage", chunk=3):
            pass
        (sp,) = trace.recorder().spans()
        assert sp.name == "stage"
        assert sp.pid == os.getpid()
        assert sp.tid == threading.get_ident()
        assert sp.duration >= 0.0
        assert sp.depth == 0
        assert sp.parent is None
        assert sp.meta == {"chunk": 3}

    def test_nesting_tracks_depth_and_parent(self):
        obs.enable()
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        inner, outer = trace.recorder().spans()
        assert (inner.name, inner.depth, inner.parent) == ("inner", 1, "outer")
        assert (outer.name, outer.depth, outer.parent) == ("outer", 0, None)

    def test_span_records_even_when_body_raises(self):
        obs.enable()
        try:
            with obs.span("failing"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert [sp.name for sp in trace.recorder().spans()] == ["failing"]


class TestTracedDecorator:
    def test_traced_uses_qualname_by_default(self):
        @obs.traced()
        def work():
            return 42

        obs.enable()
        assert work() == 42
        (sp,) = trace.recorder().spans()
        assert sp.name.endswith("work")

    def test_traced_noop_when_disabled(self):
        @obs.traced("t")
        def work():
            return 1

        assert work() == 1
        assert trace.recorder().spans() == []


class TestRecordSpan:
    def test_records_pre_measured_duration(self):
        obs.enable()
        obs.record_span("external", 1.25, codec="pyzlib")
        (sp,) = trace.recorder().spans()
        assert sp.duration == 1.25
        assert sp.meta == {"codec": "pyzlib"}

    def test_inherits_enclosing_span_as_parent(self):
        obs.enable()
        with obs.span("outer"):
            obs.record_span("timed", 0.5)
        timed = trace.recorder().spans()[0]
        assert (timed.depth, timed.parent) == (1, "outer")


class TestTraceRecorder:
    def test_bounded_buffer_counts_drops(self, monkeypatch):
        monkeypatch.setattr(trace, "_MAX_SPANS", 2)
        rec = TraceRecorder()
        for i in range(5):
            rec.add(
                Span(
                    name=f"s{i}", pid=1, tid=1, start=0.0,
                    duration=0.0, depth=0, parent=None,
                )
            )
        assert len(rec.spans()) == 2
        assert rec.dropped == 3
        rec.reset()
        assert rec.spans() == [] and rec.dropped == 0

    def test_jsonl_tee(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs.enable(trace_path=path)
        with obs.span("streamed", k="v"):
            pass
        obs.disable()
        lines = [json.loads(ln) for ln in path.read_text().splitlines()]
        assert len(lines) == 1
        assert lines[0]["name"] == "streamed"
        assert lines[0]["meta"] == {"k": "v"}
        assert lines[0]["pid"] == os.getpid()

    def test_env_enables_obs(self):
        import subprocess
        import sys

        import repro

        code = (
            "from repro import obs\n"
            "assert obs.enabled()\n"
            "with obs.span('fromenv'):\n"
            "    pass\n"
            "assert [s.name for s in obs.recorder().spans()] == ['fromenv']\n"
        )
        src = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ, REPRO_OBS="1", PYTHONPATH=src)
        proc = subprocess.run(
            [sys.executable, "-c", code], env=env,
            capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stderr
