"""End-to-end instrumentation: hot paths populate the registry/recorder,
and leave both untouched when observability is off (the deterministic
face of the "near-zero cost when disabled" requirement)."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro import obs
from repro.compressors import get_codec
from repro.compressors.base import Codec
from repro.core.primacy import PrimacyCompressor, PrimacyConfig
from repro.storage import PrimacyFileReader, PrimacyFileWriter


def _counters() -> dict[str, float]:
    return obs.report.collect()["counters"]


class TestCodecHook:
    def test_disabled_records_nothing(self, smooth_doubles):
        codec = get_codec("pyzlib")
        codec.decompress(codec.compress(smooth_doubles))
        assert len(obs.registry()) == 0
        assert obs.recorder().spans() == []

    def test_enabled_counts_bytes_and_calls(self, smooth_doubles):
        obs.enable()
        codec = get_codec("pyzlib")
        out = codec.compress(smooth_doubles)
        assert codec.decompress(out) == smooth_doubles
        c = _counters()
        assert c["codec.compress.calls{codec=pyzlib}"] == 1
        assert c["codec.compress.bytes_in{codec=pyzlib}"] == len(smooth_doubles)
        assert c["codec.compress.bytes_out{codec=pyzlib}"] == len(out)
        assert c["codec.decompress.bytes_out{codec=pyzlib}"] == len(
            smooth_doubles
        )
        names = [sp.name for sp in obs.recorder().spans()]
        # Whole-codec spans, plus the per-stage entropy split nested
        # inside them (``codec.<codec>.<stage>``).
        assert [n for n in names if not n.startswith("codec.pyzlib.")] == [
            "codec.compress",
            "codec.decompress",
        ]
        stages = {n for n in names if n.startswith("codec.pyzlib.")}
        assert {
            "codec.pyzlib.tokenize",
            "codec.pyzlib.huffman",
            "codec.pyzlib.reassemble",
        } <= stages

    def test_every_registered_codec_is_instrumented(self):
        from repro.compressors import available_codecs

        for name in available_codecs():
            codec = get_codec(name)
            for op in ("compress", "decompress"):
                fn = getattr(type(codec), op)
                assert getattr(fn, "_obs_instrumented", False), (
                    f"{name}.{op} lost the observability hook"
                )
                assert hasattr(fn, "__wrapped__")

    def test_instrumented_false_opts_out(self):
        class Bare(Codec):
            name = "bare-test"
            instrumented = False

            def compress(self, data: bytes) -> bytes:
                return data

            def decompress(self, data: bytes) -> bytes:
                return data

        assert not hasattr(Bare.compress, "__wrapped__")
        obs.enable()
        Bare().compress(b"xyz")
        assert len(obs.registry()) == 0

    def test_timing_codec_not_double_counted(self, smooth_doubles):
        obs.enable()
        PrimacyCompressor(PrimacyConfig(chunk_bytes=1 << 20)).compress(
            smooth_doubles
        )
        c = _counters()
        # One chunk -> the solver runs twice (high-order ID stream +
        # ISOBAR-compressible low bytes).  If the internal _TimingCodec
        # proxy were instrumented too, every call would count double.
        assert c["codec.compress.calls{codec=pyzlib}"] == 2
        assert "codec.compress.calls{codec=timing-proxy}" not in c


class TestPrimacyCounters:
    def test_compress_side(self, smooth_doubles):
        obs.enable()
        comp = PrimacyCompressor(PrimacyConfig(chunk_bytes=32 * 1024))
        out, stats = comp.compress(smooth_doubles)
        c = _counters()
        assert c["primacy.compress.chunks"] == len(stats.chunks)
        assert c["primacy.compress.bytes_in"] == len(smooth_doubles)
        assert c["primacy.compress.bytes_out"] == sum(
            ch.total_out for ch in stats.chunks
        )
        hist = obs.report.collect()["histograms"]["primacy.compress.chunk_ratio"]
        assert hist["samples"] == len(stats.chunks)
        names = {sp.name for sp in obs.recorder().spans()}
        assert {"primacy.precondition", "primacy.solver"} <= names

    def test_decompress_side(self, smooth_doubles):
        comp = PrimacyCompressor(PrimacyConfig(chunk_bytes=32 * 1024))
        out, _ = comp.compress(smooth_doubles)
        obs.enable()
        assert comp.decompress(out) == smooth_doubles
        c = _counters()
        assert c["primacy.decompress.chunks"] >= 1
        assert c["primacy.decompress.bytes_out"] == len(smooth_doubles)


class TestStorageCounters:
    def test_writer_and_reader(self, smooth_doubles):
        obs.enable()
        buf = io.BytesIO()
        cfg = PrimacyConfig(chunk_bytes=16 * 1024)
        with PrimacyFileWriter(buf, cfg) as writer:
            writer.write(smooth_doubles)
        n_chunks = writer.n_chunks
        buf.seek(0)
        with PrimacyFileReader(buf) as reader:
            assert reader.read_all() == smooth_doubles
        c = _counters()
        assert c["storage.write.records"] == n_chunks
        assert c["storage.read.chunks"] == n_chunks
        assert c["storage.read.bytes"] >= len(smooth_doubles) - 16 * 1024
        names = {sp.name for sp in obs.recorder().spans()}
        assert {"storage.write_record", "storage.read_chunk"} <= names

    def test_disabled_storage_records_nothing(self, smooth_doubles):
        buf = io.BytesIO()
        with PrimacyFileWriter(buf, PrimacyConfig(chunk_bytes=16 * 1024)) as w:
            w.write(smooth_doubles)
        buf.seek(0)
        with PrimacyFileReader(buf) as reader:
            reader.read_all()
        assert len(obs.registry()) == 0
        assert obs.recorder().spans() == []


class TestCheckpointCounters:
    def test_write_and_read_variable(self):
        from repro.checkpoint import CheckpointReader, CheckpointWriter

        obs.enable()
        rng = np.random.default_rng(5)
        field = np.cumsum(rng.normal(size=2048)).reshape(32, 64)
        buf = io.BytesIO()
        writer = CheckpointWriter(buf, PrimacyConfig(chunk_bytes=8 * 1024))
        writer.write_step(0, {"temp": field})
        writer.close()
        buf.seek(0)
        reader = CheckpointReader(buf)
        np.testing.assert_array_equal(reader.read(0, "temp"), field)
        c = _counters()
        assert c["checkpoint.write.variables"] == 1
        assert c["checkpoint.write.bytes_in"] == field.nbytes
        assert c["checkpoint.write.bytes_out"] > 0
        assert c["checkpoint.read.variables"] == 1
        assert c["checkpoint.read.bytes"] == field.nbytes
        spans = {sp.name: sp for sp in obs.recorder().spans()}
        assert spans["checkpoint.write_variable"].meta == {"variable": "temp"}
        assert "checkpoint.read" in spans


class TestStatsReport:
    def test_stats_report_has_stage_time_bytes_and_ratio(self, smooth_doubles):
        """The acceptance shape: per-stage time, bytes, and ratio."""
        obs.enable()
        comp = PrimacyCompressor(PrimacyConfig(chunk_bytes=32 * 1024))
        out, _ = comp.compress(smooth_doubles)
        comp.decompress(out)
        report = obs.report.collect()
        assert report["stages"]["primacy.solver"]["seconds"] >= 0.0
        assert report["stages"]["primacy.solver"]["calls"] >= 1
        assert report["counters"]["primacy.compress.bytes_in"] == len(
            smooth_doubles
        )
        ratio_hist = report["histograms"]["primacy.compress.chunk_ratio"]
        assert ratio_hist["mean"] == pytest.approx(
            len(smooth_doubles)
            / report["counters"]["primacy.compress.bytes_out"],
            rel=0.2,
        )
        text = obs.report.render_text(report)
        assert "per-stage wall time" in text
        assert "primacy.compress.bytes_in" in text
