"""Tests for the checkpoint/restart manager."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.compressors import CodecError
from repro.checkpoint import CheckpointReader, CheckpointWriter
from repro.core import PrimacyConfig


@pytest.fixture
def fields():
    rng = np.random.default_rng(8)
    return {
        "phi": (np.cumsum(rng.normal(0, 0.01, (64, 64))) % 7.0).reshape(64, 64),
        "zeon": rng.normal(1.0, 0.1, 5000),
        "density": rng.normal(300.0, 5.0, (10, 20, 30)),
    }


def _write(fields, steps=(0, 10), config=None) -> bytes:
    buf = io.BytesIO()
    with CheckpointWriter(buf, config or PrimacyConfig(chunk_bytes=16 * 1024)) as w:
        for step in steps:
            w.write_step(step, {k: v + step for k, v in fields.items()})
    return buf.getvalue()


class TestWriterReader:
    def test_roundtrip_all_variables(self, fields):
        blob = _write(fields)
        reader = CheckpointReader(io.BytesIO(blob))
        assert reader.steps() == [0, 10]
        assert reader.variables() == ["density", "phi", "zeon"]
        for step in (0, 10):
            for name, orig in fields.items():
                got = reader.read(step, name)
                assert got.shape == orig.shape
                assert got.dtype == orig.dtype
                assert np.array_equal(got, orig + step)

    def test_read_range(self, fields):
        blob = _write(fields)
        reader = CheckpointReader(io.BytesIO(blob))
        flat = (fields["density"] + 10).reshape(-1)
        got = reader.read_range(10, "density", 100, 57)
        assert np.array_equal(got, flat[100:157])

    def test_meta(self, fields):
        reader = CheckpointReader(io.BytesIO(_write(fields)))
        meta = reader.meta(0, "phi")
        assert meta.shape == (64, 64)
        assert meta.n_values == 64 * 64
        assert meta.dtype == "float64"

    def test_unknown_variable(self, fields):
        reader = CheckpointReader(io.BytesIO(_write(fields)))
        with pytest.raises(KeyError):
            reader.read(0, "nope")
        with pytest.raises(KeyError):
            reader.read(5, "phi")

    def test_duplicate_rejected(self, fields):
        buf = io.BytesIO()
        with CheckpointWriter(buf) as w:
            w.write_variable(0, "phi", fields["phi"])
            with pytest.raises(ValueError, match="already written"):
                w.write_variable(0, "phi", fields["phi"])

    def test_float32_variables(self):
        arr = np.linspace(0, 1, 4000, dtype="<f4")
        buf = io.BytesIO()
        with CheckpointWriter(buf, PrimacyConfig(chunk_bytes=8 * 1024)) as w:
            w.write_variable(3, "temp32", arr)
        reader = CheckpointReader(io.BytesIO(buf.getvalue()))
        got = reader.read(3, "temp32")
        assert got.dtype == np.dtype("float32")
        assert np.array_equal(got, arr)

    def test_integer_variables(self):
        arr = np.arange(10000, dtype="<i8") * 3
        buf = io.BytesIO()
        with CheckpointWriter(buf) as w:
            w.write_variable(0, "ids", arr)
        reader = CheckpointReader(io.BytesIO(buf.getvalue()))
        assert np.array_equal(reader.read(0, "ids"), arr)

    def test_non_numeric_rejected(self):
        with CheckpointWriter(io.BytesIO()) as w:
            with pytest.raises(ValueError):
                w.write_variable(0, "strings", np.array(["a", "b"]))

    def test_empty_checkpoint(self):
        buf = io.BytesIO()
        with CheckpointWriter(buf):
            pass
        reader = CheckpointReader(io.BytesIO(buf.getvalue()))
        assert reader.steps() == []
        assert reader.variables() == []

    def test_write_after_close_rejected(self, fields):
        w = CheckpointWriter(io.BytesIO())
        w.close()
        with pytest.raises(ValueError):
            w.write_variable(0, "phi", fields["phi"])

    def test_compresses(self, fields):
        blob = _write(fields, steps=(0,))
        raw = sum(v.nbytes for v in fields.values())
        assert len(blob) < raw

    def test_path_based_io(self, tmp_path, fields):
        path = tmp_path / "sim.prck"
        with CheckpointWriter(path) as w:
            w.write_step(0, fields)
        with CheckpointReader(path) as reader:
            assert np.array_equal(reader.read(0, "zeon"), fields["zeon"])

    def test_variables_filtered_by_step(self, fields):
        buf = io.BytesIO()
        with CheckpointWriter(buf) as w:
            w.write_variable(0, "phi", fields["phi"])
            w.write_variable(1, "zeon", fields["zeon"])
        reader = CheckpointReader(io.BytesIO(buf.getvalue()))
        assert reader.variables(0) == ["phi"]
        assert reader.variables(1) == ["zeon"]


class TestCorruption:
    def test_bad_magic(self):
        with pytest.raises(CodecError):
            CheckpointReader(io.BytesIO(b"JUNK" + bytes(40)))

    def test_missing_end_marker(self, fields):
        blob = bytearray(_write(fields, steps=(0,)))
        blob[-1] ^= 0xFF
        with pytest.raises(CodecError):
            CheckpointReader(io.BytesIO(bytes(blob)))
