"""CLI ``--auto`` coverage for compress and pack."""

from __future__ import annotations

from repro.cli import main


class TestAutoCli:
    def test_compress_auto_round_trip(self, mixed_bytes, tmp_path, capsys):
        src = tmp_path / "data.f64"
        src.write_bytes(mixed_bytes)
        packed = tmp_path / "data.pri"
        restored = tmp_path / "data.out"
        assert main([
            "compress", str(src), str(packed),
            "--auto", "--chunk-bytes", "65536",
        ]) == 0
        out = capsys.readouterr().out
        assert "planner:" in out
        assert "probe overhead" in out
        assert main(["decompress", str(packed), str(restored)]) == 0
        assert restored.read_bytes() == mixed_bytes

    def test_pack_auto_round_trip(self, mixed_bytes, tmp_path, capsys):
        src = tmp_path / "data.f64"
        src.write_bytes(mixed_bytes)
        packed = tmp_path / "data.prif"
        assert main([
            "pack", str(src), str(packed),
            "--auto", "--chunk-bytes", "65536",
        ]) == 0
        assert "planner:" in capsys.readouterr().out
        assert main(["verify", str(packed)]) == 0
        assert main(["inspect", str(packed)]) == 0
        assert "planned:     yes" in capsys.readouterr().out

    def test_pack_auto_rejects_reuse_policy(self, mixed_bytes, tmp_path):
        src = tmp_path / "data.f64"
        src.write_bytes(mixed_bytes[:65536])
        assert main([
            "pack", str(src), str(tmp_path / "x.prif"),
            "--auto", "--index-policy", "first_chunk",
        ]) == 2
