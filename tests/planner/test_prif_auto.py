"""Planned PRIF files: writer ``planner=`` kwarg, reader dispatch."""

from __future__ import annotations

import io

import pytest

from repro.core.primacy import PrimacyConfig
from repro.storage import PrimacyFileReader, PrimacyFileWriter


def _write(data: bytes, planner_config, workers=None) -> tuple[bytes, list]:
    buf = io.BytesIO()
    writer = PrimacyFileWriter(buf, planner=planner_config, workers=workers)
    writer.write(data)
    writer.close()
    return buf.getvalue(), writer.decisions


class TestPlannedPrif:
    def test_round_trip_and_planned_flag(self, mixed_bytes, planner_config):
        blob, decisions = _write(mixed_bytes, planner_config)
        reader = PrimacyFileReader(io.BytesIO(blob))
        assert reader.info.planned is True
        assert reader.read_all() == mixed_bytes
        assert len(decisions) == reader.n_chunks
        # Planned chunks are self-contained: every table row is inline.
        assert all(e.inline_index for e in reader.chunk_entries())

    def test_random_access_across_planned_chunks(
        self, mixed_bytes, planner_config
    ):
        blob, _ = _write(mixed_bytes, planner_config)
        reader = PrimacyFileReader(io.BytesIO(blob))
        word = planner_config.base.word_bytes
        # A window spanning the smooth/random chunk boundary.
        start, count = 20_000, 5_000
        got = reader.read_values(start, count)
        assert got == mixed_bytes[start * word : (start + count) * word]

    def test_pipelined_write_matches_serial(self, mixed_bytes, planner_config):
        serial, serial_dec = _write(mixed_bytes, planner_config)
        pipelined, pipelined_dec = _write(mixed_bytes, planner_config, workers=2)
        assert pipelined == serial
        assert [d.candidate for d in pipelined_dec] == [
            d.candidate for d in serial_dec
        ]

    def test_plain_file_reports_not_planned(self, smooth_bytes):
        buf = io.BytesIO()
        with PrimacyFileWriter(buf, PrimacyConfig(chunk_bytes=64 * 1024)) as w:
            w.write(smooth_bytes)
        assert PrimacyFileReader(io.BytesIO(buf.getvalue())).info.planned is False

    def test_config_and_planner_are_mutually_exclusive(self, planner_config):
        with pytest.raises(ValueError):
            PrimacyFileWriter(
                io.BytesIO(), PrimacyConfig(), planner=planner_config
            )

    def test_fsck_accepts_planned_file(self, mixed_bytes, planner_config, tmp_path):
        from repro.storage.verify import fsck

        path = tmp_path / "planned.prif"
        writer = PrimacyFileWriter(path, planner=planner_config)
        writer.write(mixed_bytes)
        writer.close()
        report = fsck(path)
        assert report.ok, report.summary()
