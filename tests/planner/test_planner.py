"""ChunkPlanner behavior: scoring, determinism, probe reuse."""

from __future__ import annotations

import pytest

from repro.core.primacy import PrimacyConfig
from repro.planner import (
    Candidate,
    ChunkPlanner,
    PlannerConfig,
    overhead_fraction,
)
from repro.planner.cost import STATIC_CODEC_MBPS, STATIC_PRECONDITIONER_MBPS


class TestConfigValidation:
    def test_requires_candidates(self):
        with pytest.raises(ValueError):
            PlannerConfig(candidates=())

    def test_requires_per_chunk_base(self):
        from repro.core import IndexReusePolicy

        base = PrimacyConfig(index_policy=IndexReusePolicy.FIRST_CHUNK)
        with pytest.raises(ValueError):
            PlannerConfig(base=base)

    def test_rejects_unknown_calibration(self):
        with pytest.raises(ValueError):
            PlannerConfig(calibration="wishful")

    def test_rejects_nonpositive_rates(self):
        with pytest.raises(ValueError):
            PlannerConfig(network_mbps=0.0)

    def test_probe_bytes_resolution(self):
        cfg = PlannerConfig()
        # Auto mode clamps chunk//512 into [2 KiB, 16 KiB], word-aligned.
        assert cfg.resolved_probe_bytes(64 * 1024) == 2048
        assert cfg.resolved_probe_bytes(2 << 20) == 4096
        assert cfg.resolved_probe_bytes(16 << 20) == 16384
        # Never longer than the chunk itself.
        assert cfg.resolved_probe_bytes(1000) == 1000 - (1000 % 8)
        explicit = PlannerConfig(probe_bytes=8192)
        assert explicit.resolved_probe_bytes(1 << 20) == 8192

    def test_static_calibration_covers_registry(self):
        from repro.compressors import available_codecs

        for name in available_codecs():
            assert name in STATIC_CODEC_MBPS, name
        assert set(STATIC_PRECONDITIONER_MBPS) == {"fused", "reference"}


class TestPlanning:
    def test_smooth_data_prefers_real_compression(self, smooth_bytes):
        planner = ChunkPlanner(PlannerConfig(base=PrimacyConfig(chunk_bytes=64 * 1024)))
        best, scores, _, _ = planner.plan(smooth_bytes[: 64 * 1024])
        assert len(scores) == len(planner.config.candidates)
        assert best.candidate.codec != "null"
        # Ratios are projected to full-chunk scale (fixed per-record
        # overhead and the inline index amortized), so compressible data
        # must show a genuine gain over raw.
        assert best.ratio > 1.0

    def test_decisions_are_deterministic(self, mixed_bytes, planner_config):
        chunk = mixed_bytes[: 64 * 1024]
        a = ChunkPlanner(planner_config).compress_chunk(chunk)
        b = ChunkPlanner(planner_config).compress_chunk(chunk)
        assert a[0] == b[0]  # identical record bytes
        assert a[2].candidate == b[2].candidate
        assert a[2].score == b[2].score

    def test_tie_break_prefers_earlier_candidate(self, smooth_bytes):
        # Two equal-valued candidates: scores are exactly equal, the
        # first must win (strictly-greater comparison), so reordering
        # the candidate tuple is the only way to change a tied outcome.
        cand = Candidate(codec="pyzlib", high_bytes=2)
        twin = Candidate(codec="pyzlib", high_bytes=2)
        cfg = PlannerConfig(
            base=PrimacyConfig(chunk_bytes=64 * 1024), candidates=(cand, twin)
        )
        best, scores, _, _ = ChunkPlanner(cfg).plan(smooth_bytes[: 64 * 1024])
        assert scores[0].score == scores[1].score
        assert best is scores[0]

    def test_whole_chunk_probe_reuses_record(self, smooth_bytes, planner_config):
        # A chunk no larger than the probe is compressed exactly once.
        small = smooth_bytes[:2048]
        record, stats, decision = ChunkPlanner(planner_config).compress_chunk(
            small
        )
        assert decision.probe_bytes == len(small)
        assert decision.compress_seconds == 0.0
        assert record  # still a valid planned record

    def test_decision_fields(self, mixed_bytes, planner_config):
        chunk = mixed_bytes[: 64 * 1024]
        _, _, decision = ChunkPlanner(planner_config).compress_chunk(chunk)
        assert decision.n_candidates == len(planner_config.candidates)
        assert decision.probe_bytes == 2048
        assert decision.probe_seconds > 0.0
        assert decision.compress_seconds > 0.0
        assert decision.score > 0.0
        assert decision.tau_est_mbps > 0.0

    def test_overhead_fraction(self, mixed_bytes, planner_config):
        planner = ChunkPlanner(planner_config)
        decisions = []
        for off in range(0, len(mixed_bytes) - 65536, 65536):
            _, _, d = planner.compress_chunk(mixed_bytes[off : off + 65536])
            decisions.append(d)
        frac = overhead_fraction(decisions)
        assert 0.0 < frac < 1.0
        assert overhead_fraction([]) == 0.0


class TestCostModel:
    """Probe-to-chunk projection and pipelined scoring in repro.planner.cost."""

    def _probe_score(self, chunk, candidate, chunk_len):
        from repro.compressors.lz77 import collect_parse_stats
        from repro.core.primacy import PrimacyCompressor
        from repro.planner.cost import score_candidate

        cfg = PlannerConfig(base=PrimacyConfig(chunk_bytes=max(chunk_len, 1 << 16)))
        probe = chunk[: cfg.resolved_probe_bytes(chunk_len)]
        with collect_parse_stats() as parse:
            record, stats, _ = PrimacyCompressor(
                candidate.config(cfg.base)
            ).compress_chunk(probe)
        return (
            score_candidate(
                candidate, stats, len(record), cfg,
                chunk_len=chunk_len, parse=parse,
            ),
            record,
            stats,
        )

    def test_projection_amortizes_fixed_overhead(self, smooth_bytes):
        # A 2 KiB pyzlib probe carries ~430 B of Huffman table headers
        # plus the inline ID index; the projected full-chunk ratio must
        # beat the raw probe ratio, which is the bug the projection
        # fixes (raw probe ratios made pyzlib look near-useless).
        cand = Candidate(codec="pyzlib", high_bytes=2)
        scored, record, stats = self._probe_score(
            smooth_bytes, cand, 64 * 1024
        )
        raw_probe_ratio = stats.total_in / stats.total_out
        assert scored.ratio > raw_probe_ratio

    def test_projection_is_exact_at_probe_scale(self, smooth_bytes):
        # When the probe covers the whole chunk there is nothing to
        # amortize: the projected output must equal the record length.
        cand = Candidate(codec="pyzlib", high_bytes=2)
        scored, record, _ = self._probe_score(smooth_bytes, cand, 2048)
        assert scored.ratio == pytest.approx(2048 / len(record))

    def test_null_candidate_is_transfer_bound(self, random_bytes):
        # Raw passthrough emits ~chunk_len bytes; at theta=4 MB/s the
        # link, not compute, must set its throughput (the old serial-sum
        # model charged both, double-penalizing every candidate).
        cand = Candidate(codec="null", high_bytes=2)
        scored, _, _ = self._probe_score(random_bytes, cand, 64 * 1024)
        assert scored.tau_mbps <= 4.0 * 1.01

    def test_pyzlib_time_prediction_tracks_parse_work(self, smooth_bytes):
        # The deterministic parse-op predictor must charge chunks whose
        # probes show heavy chain-walking / literal-heavy parses more
        # than easy ones (a static rate table cannot tell them apart --
        # measured pyzlib wall-clock spans 5x across the corpus).
        from repro.compressors.lz77 import ParseStats, collect_parse_stats
        from repro.core.primacy import PrimacyCompressor
        from repro.planner.cost import _compute_seconds

        cand = Candidate(codec="pyzlib", high_bytes=2)
        cfg = PlannerConfig(base=PrimacyConfig(chunk_bytes=1 << 16))
        with collect_parse_stats():
            _, stats, _ = PrimacyCompressor(cand.config(cfg.base)).compress_chunk(
                smooth_bytes[:2048]
            )
        scale = (1 << 16) / stats.total_in
        easy = ParseStats(
            work=150, literal_bytes=100, match_bytes=1900, input_bytes=2048
        )
        hard = ParseStats(
            work=4000, literal_bytes=1800, match_bytes=200, input_bytes=2048
        )
        t_easy = _compute_seconds(cand, stats, cfg, 1 << 16, scale, easy)
        t_hard = _compute_seconds(cand, stats, cfg, 1 << 16, scale, hard)
        assert t_hard > t_easy
        # And with no parse counters the static-table fallback engages.
        t_static = _compute_seconds(cand, stats, cfg, 1 << 16, scale, None)
        assert t_static > 0.0

    def test_scores_are_pure_functions_of_bytes(self, mixed_bytes):
        cand = Candidate(codec="pyzlib", high_bytes=2)
        one, _, _ = self._probe_score(mixed_bytes, cand, 64 * 1024)
        two, _, _ = self._probe_score(mixed_bytes, cand, 64 * 1024)
        assert one.score == two.score
        assert one.ratio == two.ratio
        assert one.tau_mbps == two.tau_mbps
