"""PlannedCompressor: container round-trips and reproducibility."""

from __future__ import annotations

import pytest

from repro.core.primacy import PrimacyCompressor
from repro.parallel import ParallelDecompressor
from repro.planner import PlannedCompressor


class TestRoundTrip:
    def test_plain_decompressor_reads_planned_container(
        self, mixed_bytes, planner_config
    ):
        # The whole point of self-describing records: a stock
        # PrimacyCompressor with no planner state restores the bytes.
        with PlannedCompressor(planner_config, workers=1) as pc:
            blob, stats = pc.compress(mixed_bytes)
        assert PrimacyCompressor().decompress(blob) == mixed_bytes
        assert stats.original_bytes == len(mixed_bytes)
        assert stats.container_bytes == len(blob)

    def test_parallel_decompressor_reads_planned_container(
        self, mixed_bytes, planner_config
    ):
        with PlannedCompressor(planner_config, workers=1) as pc:
            blob, _ = pc.compress(mixed_bytes)
        with ParallelDecompressor(workers=2) as dec:
            assert dec.decompress(blob) == mixed_bytes

    def test_decisions_cover_every_chunk(self, mixed_bytes, planner_config):
        with PlannedCompressor(planner_config, workers=1) as pc:
            _, stats = pc.compress(mixed_bytes)
            decisions = pc.last_decisions
        assert len(decisions) == len(stats.chunks)
        assert all(
            d.n_candidates == len(planner_config.candidates)
            for d in decisions
        )

    def test_empty_and_tail_only_inputs(self, planner_config):
        with PlannedCompressor(planner_config, workers=1) as pc:
            for payload in (b"", b"abc"):
                blob, _ = pc.compress(payload)
                assert PrimacyCompressor().decompress(blob) == payload


class TestReproducibility:
    def test_byte_identical_across_runs(self, mixed_bytes, planner_config):
        with PlannedCompressor(planner_config, workers=1) as pc:
            one, _ = pc.compress(mixed_bytes)
        with PlannedCompressor(planner_config, workers=1) as pc:
            two, _ = pc.compress(mixed_bytes)
        assert one == two

    def test_byte_identical_across_worker_counts(
        self, mixed_bytes, planner_config
    ):
        with PlannedCompressor(planner_config, workers=1) as serial:
            expect, _ = serial.compress(mixed_bytes)
            serial_decisions = serial.last_decisions
        with PlannedCompressor(planner_config, workers=2) as parallel:
            got, _ = parallel.compress(mixed_bytes)
            parallel_decisions = parallel.last_decisions
        assert got == expect
        assert [d.candidate for d in parallel_decisions] == [
            d.candidate for d in serial_decisions
        ]
        assert [d.score for d in parallel_decisions] == [
            d.score for d in serial_decisions
        ]

    def test_workers_conflicts_with_shared_engine(self, planner_config):
        from repro.parallel.engine import ParallelEngine

        engine = ParallelEngine(planner_config.base, workers=1)
        try:
            with pytest.raises(ValueError):
                PlannedCompressor(planner_config, workers=3, engine=engine)
        finally:
            engine.close()
