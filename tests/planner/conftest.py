"""Shared data fixtures for the planner suite.

Small chunk sizes keep the candidate sweeps fast; the data mixes a
smooth (highly compressible) region with an incompressible one so the
planner has a real decision to make per chunk.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.primacy import PrimacyConfig
from repro.planner import PlannerConfig

CHUNK = 64 * 1024


@pytest.fixture(scope="session")
def smooth_bytes() -> bytes:
    rng = np.random.default_rng(21)
    return np.cumsum(rng.normal(0, 1e-6, 3 * CHUNK // 8)).astype("<f8").tobytes()


@pytest.fixture(scope="session")
def random_bytes() -> bytes:
    rng = np.random.default_rng(22)
    return rng.integers(0, 256, 3 * CHUNK, dtype=np.uint8).tobytes()


@pytest.fixture(scope="session")
def mixed_bytes(smooth_bytes, random_bytes) -> bytes:
    return smooth_bytes + random_bytes + b"\x07\x01\x02"  # odd tail


@pytest.fixture()
def planner_config() -> PlannerConfig:
    return PlannerConfig(base=PrimacyConfig(chunk_bytes=CHUNK))
