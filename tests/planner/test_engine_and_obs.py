"""Engine fan-out of planner tasks, and the planner's obs surface."""

from __future__ import annotations

from repro import obs
from repro.core.primacy import PrimacyCompressor
from repro.parallel.engine import KIND_PLAN_COMPRESS, ParallelEngine
from repro.planner import ChunkPlanner, Decision


class TestEnginePlanTasks:
    def test_submit_and_pop(self, mixed_bytes, planner_config):
        chunk = mixed_bytes[: 64 * 1024]
        with ParallelEngine(planner_config.base, workers=2) as engine:
            task = engine.submit(KIND_PLAN_COMPRESS, chunk, planner_config)
            record, stats, decision = engine.pop(task)
        assert isinstance(decision, Decision)
        assert record[0] & 0x02
        restored, _ = PrimacyCompressor().decompress_chunk(record)
        assert restored == chunk

    def test_run_inline(self, mixed_bytes, planner_config):
        chunk = mixed_bytes[: 64 * 1024]
        with ParallelEngine(planner_config.base, workers=1) as engine:
            record, stats, decision = engine.run_inline(
                KIND_PLAN_COMPRESS, chunk, planner_config
            )
        assert stats.n_values == len(chunk) // 8
        assert decision.candidate in planner_config.candidates

    def test_map_ordered_preserves_chunk_order(
        self, mixed_bytes, planner_config
    ):
        chunks = [
            mixed_bytes[off : off + 65536]
            for off in range(0, 3 * 65536, 65536)
        ]
        with ParallelEngine(planner_config.base, workers=2) as engine:
            results = list(
                engine.map_ordered(KIND_PLAN_COMPRESS, chunks, planner_config)
            )
        assert len(results) == len(chunks)
        for chunk, (record, _, _) in zip(chunks, results):
            restored, _ = PrimacyCompressor().decompress_chunk(record)
            assert restored == chunk


class TestPlannerObs:
    def setup_method(self):
        obs.disable()
        obs.reset()

    def teardown_method(self):
        obs.disable()
        obs.reset()

    def test_decision_histogram_and_spans(self, mixed_bytes, planner_config):
        obs.enable()
        try:
            planner = ChunkPlanner(planner_config)
            for off in (0, 65536):
                planner.compress_chunk(mixed_bytes[off : off + 65536])
            snapshot = obs.metrics.registry().snapshot()
        finally:
            obs.disable()
        counters = {
            (name, tuple(sorted(labels.items()))): value
            for name, labels, value in snapshot["counters"]
        }
        assert counters[("planner.chunks", ())] == 2
        assert counters[("planner.probe_seconds", ())] > 0
        decisions = [
            (labels, value)
            for (name, labels), value in counters.items()
            if name == "planner.decisions"
        ]
        assert decisions, sorted(counters)
        assert sum(value for _, value in decisions) == 2
        assert any(
            name == "planner.ratio_est" for name, *_ in snapshot["histograms"]
        )

    def test_no_metrics_when_disabled(self, mixed_bytes, planner_config):
        planner = ChunkPlanner(planner_config)
        planner.compress_chunk(mixed_bytes[:65536])
        snapshot = obs.metrics.registry().snapshot()
        assert not any(
            name.startswith("planner.")
            for name, *_ in snapshot.get("counters", ())
        )
