"""Planned-record framing: round-trips and adversarial headers."""

from __future__ import annotations

import pytest

from repro.compressors import CodecError
from repro.compressors.base import CorruptionError, TruncationError
from repro.core.linearize import Linearization
from repro.core.primacy import (
    PrimacyCompressor,
    PrimacyConfig,
    chunk_record_index_section,
)
from repro.planner import DEFAULT_CANDIDATES, Candidate
from repro.planner.record import (
    decode_planned_record,
    encode_planned_record,
    is_planned_record,
    parse_planned_header,
)


def _planned(candidate: Candidate, payload: bytes, base: PrimacyConfig):
    comp = PrimacyCompressor(candidate.config(base))
    inner, stats, _ = comp.compress_chunk(payload)
    return encode_planned_record(candidate, inner), stats


class TestRoundTrip:
    @pytest.mark.parametrize("candidate", DEFAULT_CANDIDATES, ids=lambda c: c.label)
    def test_every_default_candidate_roundtrips(self, candidate, smooth_bytes):
        base = PrimacyConfig()
        payload = smooth_bytes[: 16 * 1024]
        record, _ = _planned(candidate, payload, base)
        assert is_planned_record(record)
        chunk, index = decode_planned_record(
            record, base.word_bytes, base.checksum
        )
        assert chunk == payload
        assert index is not None

    def test_header_fields_survive(self):
        cand = Candidate(
            codec="pylzo", high_bytes=3, linearization=Linearization.ROW
        )
        record = encode_planned_record(cand, b"inner-bytes")
        codec, high, lin, pos = parse_planned_header(record)
        assert codec == "pylzo"
        assert high == 3
        assert lin is Linearization.ROW
        assert bytes(record[pos:]) == b"inner-bytes"

    def test_index_section_recurses_into_inner_record(self, smooth_bytes):
        # The reader walks index chains through this helper; a planned
        # record must expose its *inner* record's inline index.
        base = PrimacyConfig()
        cand = Candidate(codec="pyzlib", high_bytes=1)
        record, _ = _planned(cand, smooth_bytes[: 16 * 1024], base)
        inline, index, _ = chunk_record_index_section(record, base.high_bytes)
        assert inline is True
        assert index is not None


class TestAdversarialHeaders:
    def test_empty_record(self):
        with pytest.raises(TruncationError):
            parse_planned_header(b"")

    def test_wrong_flags(self):
        with pytest.raises(CorruptionError):
            parse_planned_header(bytes([0x01]) + b"rest")

    def test_truncated_codec_name(self):
        record = bytes([0x02, 10]) + b"py"  # promises 10 name bytes
        with pytest.raises(TruncationError):
            parse_planned_header(record)

    def test_non_ascii_codec_name(self):
        record = bytes([0x02, 2, 0xFF, 0xFE, 1, 0])
        with pytest.raises(CorruptionError):
            parse_planned_header(record)

    def test_split_width_out_of_range(self):
        record = bytes([0x02, 4]) + b"null" + bytes([7, 0])
        with pytest.raises(CorruptionError):
            parse_planned_header(record)

    def test_missing_linearization_byte(self):
        record = bytes([0x02, 4]) + b"null" + bytes([2])
        with pytest.raises(TruncationError):
            parse_planned_header(record)

    def test_bad_linearization_byte(self):
        record = bytes([0x02, 4]) + b"null" + bytes([2, 9])
        with pytest.raises(CorruptionError):
            parse_planned_header(record)

    def test_unknown_codec_is_typed(self):
        record = bytes([0x02, 7]) + b"no-such" + bytes([2, 0]) + b"x"
        with pytest.raises(CodecError):
            decode_planned_record(record, 8, True)

    def test_corrupt_inner_record_is_typed(self, smooth_bytes):
        base = PrimacyConfig()
        cand = Candidate(codec="pyzlib", high_bytes=2)
        record, _ = _planned(cand, smooth_bytes[:8192], base)
        broken = bytearray(record)
        broken[len(broken) // 2] ^= 0xFF
        with pytest.raises(CodecError):
            decode_planned_record(bytes(broken), base.word_bytes, base.checksum)
