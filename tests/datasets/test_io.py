"""Tests for real-data loading."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import generate
from repro.datasets.io import (
    DATA_DIR_ENV,
    find_real_file,
    load_values,
    real_data_dir,
)


class TestRealDataDir:
    def test_unset_env(self, monkeypatch):
        monkeypatch.delenv(DATA_DIR_ENV, raising=False)
        assert real_data_dir() is None
        assert find_real_file("obs_temp") is None

    def test_nonexistent_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv(DATA_DIR_ENV, str(tmp_path / "missing"))
        assert real_data_dir() is None

    def test_suffix_resolution(self, tmp_path):
        (tmp_path / "a.f64").write_bytes(b"\x00" * 8)
        (tmp_path / "b.bin").write_bytes(b"\x00" * 8)
        (tmp_path / "c").write_bytes(b"\x00" * 8)
        assert find_real_file("a", tmp_path).name == "a.f64"
        assert find_real_file("b", tmp_path).name == "b.bin"
        assert find_real_file("c", tmp_path).name == "c"
        assert find_real_file("d", tmp_path) is None


class TestLoadValues:
    def test_loads_prefix(self, tmp_path):
        vals = np.arange(100, dtype="<f8")
        path = tmp_path / "v.f64"
        vals.tofile(path)
        out = load_values(path, 10)
        assert np.array_equal(out, vals[:10])

    def test_loads_all(self, tmp_path):
        vals = np.arange(25, dtype="<f8")
        path = tmp_path / "v.f64"
        vals.tofile(path)
        assert load_values(path).size == 25

    def test_short_file_rejected(self, tmp_path):
        path = tmp_path / "v.f64"
        np.arange(5, dtype="<f8").tofile(path)
        with pytest.raises(ValueError):
            load_values(path, 10)


class TestGenerateUsesRealData:
    def test_env_overrides_synthetic(self, monkeypatch, tmp_path):
        real = np.linspace(0, 1, 4096).astype("<f8")
        real.tofile(tmp_path / "obs_temp.f64")
        monkeypatch.setenv(DATA_DIR_ENV, str(tmp_path))
        out = generate("obs_temp", 2048, seed=0)
        assert np.array_equal(out, real[:2048])

    def test_other_names_stay_synthetic(self, monkeypatch, tmp_path):
        np.linspace(0, 1, 4096).astype("<f8").tofile(tmp_path / "obs_temp.f64")
        monkeypatch.setenv(DATA_DIR_ENV, str(tmp_path))
        synthetic = generate("msg_lu", 1024, seed=0)
        monkeypatch.delenv(DATA_DIR_ENV)
        assert np.array_equal(synthetic, generate("msg_lu", 1024, seed=0))
