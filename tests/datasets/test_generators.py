"""Tests for the synthetic dataset generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    DATASETS,
    FIGURE1_DATASETS,
    FIGURE3_DATASETS,
    FIGURE4_DATASETS,
    dataset_names,
    generate,
    generate_bytes,
    get_spec,
)


class TestRegistry:
    def test_twenty_datasets(self):
        assert len(dataset_names()) == 20

    def test_table3_order_preserved(self):
        names = dataset_names()
        assert names[0] == "gts_chkp_zeon"
        assert names[-1] == "obs_temp"

    def test_figure_groups_are_registered(self):
        for group in [FIGURE1_DATASETS, FIGURE3_DATASETS, FIGURE4_DATASETS]:
            for name in group:
                assert name in DATASETS

    def test_figure4_matches_paper(self):
        assert FIGURE4_DATASETS == ("num_comet", "flash_velx", "obs_temp")

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            get_spec("nope")

    def test_specs_have_paper_calibration(self):
        for spec in DATASETS.values():
            assert spec.paper_zlib_cr >= 1.0
            assert spec.paper_primacy_cr >= 1.0
            assert 0.0 <= spec.smoothness < 1.0


class TestGeneration:
    def test_shape_and_dtype(self):
        vals = generate("obs_temp", 1000, seed=0)
        assert vals.shape == (1000,)
        assert vals.dtype == np.dtype("<f8")

    def test_deterministic(self):
        a = generate("flash_velx", 2048, seed=7)
        b = generate("flash_velx", 2048, seed=7)
        assert np.array_equal(a, b)

    def test_seed_changes_data(self):
        a = generate("flash_velx", 2048, seed=7)
        b = generate("flash_velx", 2048, seed=8)
        assert not np.array_equal(a, b)

    def test_datasets_differ_from_each_other(self):
        a = generate("gts_phi_l", 1024, seed=0)
        b = generate("gts_phi_nl", 1024, seed=0)
        assert not np.array_equal(a, b)

    def test_all_finite(self):
        for name in dataset_names():
            vals = generate(name, 512, seed=1)
            assert np.all(np.isfinite(vals)), name

    def test_generate_bytes_consistent(self):
        assert (
            generate_bytes("msg_lu", 256, seed=2)
            == generate("msg_lu", 256, seed=2).tobytes()
        )

    def test_n_values_validation(self):
        with pytest.raises(ValueError):
            generate("obs_temp", 0)

    def test_exponent_range_respected(self):
        spec = get_spec("obs_temp")
        vals = np.abs(generate("obs_temp", 8192, seed=0))
        log_mag = np.log10(vals[vals > 0])
        spread = log_mag.max() - log_mag.min()
        # tanh-bounded magnitude mapping plus moderate relative noise.
        assert spread < spec.exponent_decades + 1.5

    def test_negative_fraction(self):
        vals = generate("flash_velx", 8192, seed=0)
        frac = (vals < 0).mean()
        assert 0.3 < frac < 0.7

    def test_quantization_creates_zero_mantissa_tail(self):
        vals = generate("num_plasma", 4096, seed=0)
        bits = vals.view(np.uint64)
        # quantize_bits=22 leaves the low ~29 mantissa bits zero.
        assert np.all((bits & np.uint64((1 << 24) - 1)) == 0)

    def test_tiled_dataset_is_repetitive(self):
        # Tiling repeats whole values; fresh blocks and point perturbations
        # keep it from being a pure cycle, but most values still recur.
        vals = generate("msg_sppm", 8192, seed=0)
        unique = np.unique(vals.view(np.uint64)).size
        assert unique < vals.size / 2


class TestCalibration:
    """The generated data must land in the paper's compressibility bands."""

    @pytest.mark.parametrize("name", ["gts_chkp_zeon", "obs_temp", "num_control"])
    def test_hard_datasets_are_hard(self, name):
        from repro.compressors import get_codec

        data = generate_bytes(name, 8192, seed=1)
        cr = len(data) / len(get_codec("pyzlib").compress(data))
        assert cr < 1.25

    def test_sppm_is_easy(self):
        from repro.compressors import get_codec

        data = generate_bytes("msg_sppm", 8192, seed=1)
        cr = len(data) / len(get_codec("pyzlib").compress(data))
        assert cr > 4.0

    def test_plasma_is_medium(self):
        from repro.compressors import get_codec

        data = generate_bytes("num_plasma", 8192, seed=1)
        cr = len(data) / len(get_codec("pyzlib").compress(data))
        assert 1.4 < cr < 3.5
