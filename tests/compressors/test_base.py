"""Tests for the codec interface, registry, and measurement helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compressors import (
    Codec,
    CodecError,
    available_codecs,
    evaluate_codec,
    get_codec,
)
from repro.compressors.base import CodecMetrics, as_bytes, register_codec


class TestRegistry:
    def test_all_expected_codecs_registered(self):
        names = available_codecs()
        for expected in [
            "pyzlib",
            "pylzo",
            "pybzip",
            "huffman",
            "rle",
            "fpc",
            "fpzip",
            "null",
            "primacy",
        ]:
            assert expected in names

    def test_get_codec_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown codec"):
            get_codec("does-not-exist")

    def test_get_codec_passes_kwargs(self):
        codec = get_codec("pyzlib", level=1)
        assert codec.level == 1

    def test_register_requires_codec_subclass(self):
        with pytest.raises(TypeError):
            register_codec(int)

    def test_register_requires_name(self):
        class Nameless(Codec):
            def compress(self, data):
                return data

            def decompress(self, data):
                return data

        with pytest.raises(ValueError):
            register_codec(Nameless)


class TestInstanceCache:
    def test_same_options_share_instance(self):
        assert get_codec("pyzlib", level=3) is get_codec("pyzlib", level=3)
        assert get_codec("huffman") is get_codec("huffman")

    def test_distinct_options_distinct_instances(self):
        assert get_codec("pyzlib", level=1) is not get_codec("pyzlib", level=2)

    def test_unhashable_options_bypass_cache(self):
        class Tagged(Codec):
            name = "tagged-cache-test"

            def __init__(self, tags=()):
                self.tags = tags

            def compress(self, data):
                return bytes(data)

            def decompress(self, data):
                return bytes(data)

        from repro.compressors.base import _REGISTRY

        register_codec(Tagged)
        try:
            a = get_codec("tagged-cache-test", tags=["x"])
            b = get_codec("tagged-cache-test", tags=["x"])
            assert a is not b
        finally:
            del _REGISTRY["tagged-cache-test"]

    def test_non_cacheable_codec_never_shared(self):
        # PrimacyCodec keeps last_stats per call; sharing would leak
        # state between unrelated callers.
        assert get_codec("primacy") is not get_codec("primacy")

    def test_reregistration_invalidates(self):
        from repro.compressors.base import _REGISTRY

        class First(Codec):
            name = "reload-cache-test"

            def compress(self, data):
                return bytes(data)

            def decompress(self, data):
                return bytes(data)

        class Second(First):
            pass

        register_codec(First)
        try:
            old = get_codec("reload-cache-test")
            assert type(old) is First
            register_codec(Second)
            assert type(get_codec("reload-cache-test")) is Second
        finally:
            del _REGISTRY["reload-cache-test"]


class TestAsBytes:
    def test_bytes_passthrough(self):
        b = b"abc"
        assert as_bytes(b) is b

    def test_bytearray_and_memoryview(self):
        assert as_bytes(bytearray(b"xy")) == b"xy"
        assert as_bytes(memoryview(b"xy")) == b"xy"

    def test_ndarray(self):
        arr = np.array([1.0, 2.0], dtype="<f8")
        assert as_bytes(arr) == arr.tobytes()

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            as_bytes("a string")


class TestEvaluateCodec:
    def test_metrics_fields(self, smooth_doubles):
        m = evaluate_codec(get_codec("huffman"), smooth_doubles)
        assert m.original_bytes == len(smooth_doubles)
        assert m.compressed_bytes > 0
        assert m.compression_ratio == pytest.approx(
            m.original_bytes / m.compressed_bytes
        )
        assert m.sigma == pytest.approx(1.0 / m.compression_ratio)
        assert m.compression_mbps > 0
        assert m.decompression_mbps > 0

    def test_broken_codec_detected(self):
        class Broken(Codec):
            name = "broken-test"

            def compress(self, data):
                return data

            def decompress(self, data):
                return data[:-1] if data else data

        with pytest.raises(CodecError, match="round trip"):
            evaluate_codec(Broken(), b"hello")

    def test_repeats_validation(self):
        with pytest.raises(ValueError):
            evaluate_codec(get_codec("null"), b"x", repeats=0)

    def test_empty_input(self):
        m = evaluate_codec(get_codec("null"), b"")
        assert m.compression_ratio == 1.0
        assert m.sigma == 1.0


class TestCompressionRatioHelper:
    def test_cr_of_empty_is_one(self):
        assert get_codec("huffman").compression_ratio(b"") == 1.0

    def test_cr_matches_sizes(self):
        codec = get_codec("rle")
        data = b"\x00" * 1000
        cr = codec.compression_ratio(data)
        assert cr == pytest.approx(len(data) / len(codec.compress(data)))


class TestCodecMetricsDataclass:
    def test_sigma_for_zero_bytes(self):
        m = CodecMetrics(
            codec="x",
            original_bytes=0,
            compressed_bytes=0,
            compression_ratio=1.0,
            compression_mbps=0.0,
            decompression_mbps=0.0,
        )
        assert m.sigma == 1.0
