"""Tests for the canonical length-limited Huffman coder."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors import CodecError, get_codec
from repro.compressors.huffman import (
    MAX_BITS,
    SYNC_SYMBOLS,
    HuffmanTable,
    canonical_codes,
    code_lengths,
    decode_symbol_block,
    encode_symbol_block,
)


class TestCodeLengths:
    def test_empty_alphabet(self):
        assert code_lengths(np.zeros(256, np.int64)).sum() == 0

    def test_single_symbol_gets_length_one(self):
        freqs = np.zeros(256, np.int64)
        freqs[65] = 1000
        lengths = code_lengths(freqs)
        assert lengths[65] == 1
        assert lengths.sum() == 1

    def test_kraft_equality(self):
        rng = np.random.default_rng(0)
        freqs = rng.integers(0, 1000, 256)
        lengths = code_lengths(freqs)
        nz = lengths[lengths > 0]
        assert (2.0 ** (-nz)).sum() == pytest.approx(1.0)

    def test_respects_length_limit(self):
        # Exponential frequencies would need > MAX_BITS codes if unlimited.
        freqs = np.array([2**i for i in range(40)] + [0] * 216, dtype=np.int64)
        lengths = code_lengths(freqs)
        assert lengths.max() <= MAX_BITS

    def test_more_frequent_is_never_longer(self):
        freqs = np.array([1000, 100, 10, 1], dtype=np.int64)
        lengths = code_lengths(freqs)
        assert lengths[0] <= lengths[1] <= lengths[2] <= lengths[3]

    def test_cost_within_one_bit_of_entropy(self):
        rng = np.random.default_rng(1)
        freqs = rng.zipf(1.5, 100000).clip(1, 255)
        hist = np.bincount(freqs, minlength=256)
        lengths = code_lengths(hist)
        p = hist[hist > 0] / hist.sum()
        entropy = -(p * np.log2(p)).sum()
        avg_len = (hist * lengths).sum() / hist.sum()
        assert entropy <= avg_len <= entropy + 1.0

    def test_rejects_negative_frequencies(self):
        with pytest.raises(ValueError):
            code_lengths(np.array([-1, 5]))

    def test_rejects_oversized_alphabet(self):
        with pytest.raises(ValueError):
            code_lengths(np.ones(1 << 13, dtype=np.int64), max_bits=12)

    @given(st.lists(st.integers(0, 10000), min_size=2, max_size=80))
    @settings(max_examples=50, deadline=None)
    def test_property_kraft_holds(self, freq_list):
        freqs = np.array(freq_list, dtype=np.int64)
        lengths = code_lengths(freqs)
        nz = lengths[lengths > 0]
        if nz.size:
            assert (2.0 ** (-nz.astype(float))).sum() <= 1.0 + 1e-9
        # Present symbols always get codes; absent never do.
        assert np.all((lengths > 0) == (freqs > 0)) or (freqs > 0).sum() == 1


class TestCanonicalCodes:
    def test_prefix_free(self):
        freqs = np.random.default_rng(2).integers(1, 100, 40)
        lengths = code_lengths(np.concatenate([freqs, np.zeros(216, np.int64)]))
        codes = canonical_codes(lengths)
        words = [
            format(int(codes[s]), f"0{int(lengths[s])}b")
            for s in np.flatnonzero(lengths)
        ]
        for i, a in enumerate(words):
            for j, b in enumerate(words):
                if i != j:
                    assert not b.startswith(a)

    def test_all_zero_lengths(self):
        assert canonical_codes(np.zeros(10, np.int64)).sum() == 0


class TestHuffmanTableRoundtrip:
    @pytest.mark.parametrize(
        "n", [1, 2, 100, SYNC_SYMBOLS - 1, SYNC_SYMBOLS, SYNC_SYMBOLS + 1, 50000]
    )
    def test_sizes_across_block_boundaries(self, n):
        rng = np.random.default_rng(n)
        symbols = rng.zipf(1.4, n).clip(0, 255).astype(np.int64)
        freqs = np.bincount(symbols, minlength=256)
        table = HuffmanTable.from_frequencies(freqs)
        stream, offsets = table.encode(symbols)
        out = table.decode(stream, n, offsets)
        assert np.array_equal(out, symbols)

    def test_serialize_roundtrip(self):
        freqs = np.bincount(np.arange(50) % 7, minlength=256)
        table = HuffmanTable.from_frequencies(freqs)
        blob = table.serialize()
        restored, pos = HuffmanTable.deserialize(blob)
        assert pos == len(blob)
        assert np.array_equal(restored.lengths, table.lengths)
        assert np.array_equal(restored.codes, table.codes)

    def test_encode_rejects_uncoded_symbol(self):
        freqs = np.zeros(256, np.int64)
        freqs[1] = 10
        freqs[2] = 10
        table = HuffmanTable.from_frequencies(freqs)
        with pytest.raises(CodecError):
            table.encode(np.array([3]))

    def test_decode_rejects_bad_offsets(self):
        freqs = np.bincount(np.zeros(10, np.int64) + 5, minlength=256)
        freqs[7] = 5
        table = HuffmanTable.from_frequencies(freqs)
        symbols = np.array([5, 7] * 50)
        stream, offsets = table.encode(symbols)
        with pytest.raises(CodecError):
            table.decode(stream, 100, offsets[:-1] if offsets.size > 1 else np.array([99999]))

    def test_kraft_violation_rejected_on_deserialize(self):
        from repro.util.varint import encode_uvarint

        lengths = np.ones(256, dtype=np.uint8)  # 256 one-bit codes: invalid
        nibbles = (lengths[0::2] << 4) | lengths[1::2]
        blob = encode_uvarint(256) + nibbles.tobytes()
        with pytest.raises(CodecError, match="Kraft"):
            HuffmanTable.deserialize(blob)


class TestSymbolBlocks:
    def test_roundtrip_large_alphabet(self):
        rng = np.random.default_rng(3)
        symbols = rng.integers(0, 300, 5000)
        blob = encode_symbol_block(symbols, 300)
        out, pos = decode_symbol_block(blob)
        assert pos == len(blob)
        assert np.array_equal(out, symbols)

    def test_empty_block(self):
        blob = encode_symbol_block(np.zeros(0, np.int64), 256)
        out, _ = decode_symbol_block(blob)
        assert out.size == 0

    def test_out_of_alphabet_rejected(self):
        with pytest.raises(ValueError):
            encode_symbol_block(np.array([256]), 256)

    def test_truncated_stream_rejected(self):
        blob = encode_symbol_block(np.arange(100) % 9, 256)
        with pytest.raises((CodecError, ValueError)):
            decode_symbol_block(blob[: len(blob) - 5])


class TestHuffmanCodec:
    @pytest.mark.parametrize(
        "data",
        [b"", b"x", b"aaaa", bytes(range(256)) * 4, b"\x00" * 10000],
        ids=["empty", "single", "run", "uniform", "zeros"],
    )
    def test_roundtrips(self, data):
        codec = get_codec("huffman")
        assert codec.decompress(codec.compress(data)) == data

    def test_skewed_data_compresses(self):
        rng = np.random.default_rng(4)
        data = rng.zipf(1.3, 100000).clip(0, 255).astype(np.uint8).tobytes()
        codec = get_codec("huffman")
        assert len(codec.compress(data)) < len(data)

    @given(st.binary(max_size=3000))
    @settings(max_examples=50, deadline=None)
    def test_property_roundtrip(self, data):
        codec = get_codec("huffman")
        assert codec.decompress(codec.compress(data)) == data
