"""Cross-codec property tests: every registered codec is lossless."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors import available_codecs, get_codec

# primacy is exercised extensively in tests/core; the remaining codecs
# are cheap enough for property testing here.
_FAST_CODECS = ["huffman", "null", "pylzo", "pyzlib", "rle", "fpc", "fpzip"]


@pytest.mark.parametrize("name", _FAST_CODECS)
@given(data=st.binary(max_size=1500))
@settings(max_examples=25, deadline=None)
def test_property_roundtrip(name, data):
    codec = get_codec(name)
    assert codec.decompress(codec.compress(data)) == data


@pytest.mark.parametrize("name", available_codecs())
def test_empty_input(name):
    codec = get_codec(name)
    assert codec.decompress(codec.compress(b"")) == b""


@pytest.mark.parametrize("name", available_codecs())
def test_scientific_doubles_roundtrip(name, obs_temp_small):
    codec = get_codec(name)
    assert codec.decompress(codec.compress(obs_temp_small)) == obs_temp_small


@pytest.mark.parametrize("name", available_codecs())
def test_compressed_stream_is_self_describing(name, smooth_doubles):
    """A fresh codec instance must decode another instance's output."""
    blob = get_codec(name).compress(smooth_doubles)
    assert get_codec(name).decompress(blob) == smooth_doubles


@pytest.mark.parametrize("name", ["pyzlib", "pylzo", "huffman", "rle"])
def test_bounded_expansion_on_noise(name):
    data = np.random.default_rng(9).bytes(32768)
    compressed = get_codec(name).compress(data)
    assert len(compressed) <= len(data) * 1.02 + 16
