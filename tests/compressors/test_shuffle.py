"""Tests for the byte-shuffle preconditioner codec."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors import CodecError, get_codec
from repro.compressors.shuffle import ShuffleCodec


class TestRoundtrip:
    @pytest.mark.parametrize(
        "data",
        [b"", b"short", np.arange(1000, dtype="<f8").tobytes(),
         np.arange(999, dtype="<f8").tobytes() + b"xyz"],
        ids=["empty", "sub-word", "aligned", "tail"],
    )
    def test_basic(self, data):
        codec = ShuffleCodec()
        assert codec.decompress(codec.compress(data)) == data

    def test_word_size_4(self):
        data = np.arange(500, dtype="<f4").tobytes()
        codec = ShuffleCodec(word_bytes=4)
        assert codec.decompress(codec.compress(data)) == data

    def test_other_backend(self, smooth_doubles):
        codec = ShuffleCodec(backend="pylzo")
        assert codec.decompress(codec.compress(smooth_doubles)) == smooth_doubles

    def test_backend_recorded_in_stream(self, smooth_doubles):
        # A default-constructed codec must decode a pylzo-backed stream.
        blob = ShuffleCodec(backend="pylzo").compress(smooth_doubles)
        assert ShuffleCodec().decompress(blob) == smooth_doubles

    @given(st.binary(max_size=2000))
    @settings(max_examples=40, deadline=None)
    def test_property_roundtrip(self, data):
        codec = ShuffleCodec()
        assert codec.decompress(codec.compress(data)) == data


class TestBehaviour:
    def test_improves_on_vanilla_for_floats(self, noisy_doubles):
        vanilla = get_codec("pyzlib")
        shuffle = ShuffleCodec()
        assert len(shuffle.compress(noisy_doubles)) < len(
            vanilla.compress(noisy_doubles)
        )

    def test_registered(self):
        assert isinstance(get_codec("shuffle"), ShuffleCodec)

    def test_word_validation(self):
        with pytest.raises(ValueError):
            ShuffleCodec(word_bytes=0)

    def test_truncated_rejected(self, smooth_doubles):
        codec = ShuffleCodec()
        blob = codec.compress(smooth_doubles)
        with pytest.raises((CodecError, ValueError)):
            codec.decompress(blob[: len(blob) // 2])
