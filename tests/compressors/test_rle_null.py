"""Tests for the RLE and null codecs."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors import CodecError
from repro.compressors.null import NullCodec
from repro.compressors.rle import RleCodec, find_runs


class TestFindRuns:
    def test_empty(self):
        starts, lengths = find_runs(np.zeros(0, np.uint8))
        assert starts.size == 0 and lengths.size == 0

    def test_single_run(self):
        starts, lengths = find_runs(np.frombuffer(b"aaaa", np.uint8))
        assert starts.tolist() == [0]
        assert lengths.tolist() == [4]

    def test_alternating(self):
        starts, lengths = find_runs(np.frombuffer(b"abab", np.uint8))
        assert starts.tolist() == [0, 1, 2, 3]
        assert lengths.tolist() == [1, 1, 1, 1]

    def test_mixed(self):
        starts, lengths = find_runs(np.frombuffer(b"aabbbc", np.uint8))
        assert starts.tolist() == [0, 2, 5]
        assert lengths.tolist() == [2, 3, 1]

    def test_covers_input(self):
        rng = np.random.default_rng(0)
        buf = rng.integers(0, 3, 1000).astype(np.uint8)
        starts, lengths = find_runs(buf)
        assert int(lengths.sum()) == buf.size
        assert starts[0] == 0


class TestRleCodec:
    @pytest.mark.parametrize(
        "data",
        [
            b"",
            b"a",
            b"ab",
            b"a" * 3,
            b"a" * 128,
            b"a" * 129,
            b"a" * 1000,
            b"abc" * 100,
            bytes(range(256)),
            b"x" * 127 + b"y" * 3 + b"z",
        ],
    )
    def test_roundtrips(self, data):
        codec = RleCodec()
        assert codec.decompress(codec.compress(data)) == data

    def test_long_runs_compress(self):
        data = b"\x00" * 100000
        assert len(RleCodec().compress(data)) < 2000

    def test_literal_expansion_bounded(self, random_bytes):
        # PackBits worst case: 1 control byte per 128 literals.
        compressed = RleCodec().compress(random_bytes)
        assert len(compressed) <= len(random_bytes) * 129 / 128 + 2

    def test_reserved_control_rejected(self):
        with pytest.raises(CodecError):
            RleCodec().decompress(bytes([128, 0]))

    def test_truncated_literal_rejected(self):
        with pytest.raises(CodecError):
            RleCodec().decompress(bytes([5, 1, 2]))

    def test_truncated_run_rejected(self):
        with pytest.raises(CodecError):
            RleCodec().decompress(bytes([200]))

    @given(st.binary(max_size=4000))
    @settings(max_examples=80, deadline=None)
    def test_property_roundtrip(self, data):
        codec = RleCodec()
        assert codec.decompress(codec.compress(data)) == data


class TestNullCodec:
    def test_identity(self, random_bytes):
        codec = NullCodec()
        assert codec.compress(random_bytes) == random_bytes
        assert codec.decompress(random_bytes) == random_bytes

    def test_cr_is_one(self):
        assert NullCodec().compression_ratio(b"any data at all") == 1.0
