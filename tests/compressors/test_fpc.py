"""Tests for the FPC predictive codec."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors import CodecError
from repro.compressors.fpc import FpcCodec


class TestRoundtrip:
    @pytest.mark.parametrize(
        "values",
        [
            [],
            [0.0],
            [1.0, 2.0, 3.0],
            [np.nan, np.inf, -np.inf, -0.0],
            list(np.linspace(-1e300, 1e300, 100)),
        ],
        ids=["empty", "zero", "small", "special", "extreme"],
    )
    def test_value_lists(self, values):
        data = np.array(values, dtype="<f8").tobytes()
        codec = FpcCodec()
        assert codec.decompress(codec.compress(data)) == data

    def test_non_multiple_of_eight_tail(self):
        data = np.arange(10, dtype="<f8").tobytes() + b"xyz"
        codec = FpcCodec()
        assert codec.decompress(codec.compress(data)) == data

    def test_smooth_field_roundtrip(self, smooth_doubles):
        codec = FpcCodec()
        assert codec.decompress(codec.compress(smooth_doubles)) == smooth_doubles

    def test_noise_roundtrip(self, noisy_doubles):
        codec = FpcCodec()
        assert codec.decompress(codec.compress(noisy_doubles)) == noisy_doubles

    @given(st.lists(st.floats(allow_nan=False, width=64), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_property_roundtrip(self, values):
        data = np.array(values, dtype="<f8").tobytes()
        codec = FpcCodec(table_bits=8)
        assert codec.decompress(codec.compress(data)) == data

    @given(st.binary(max_size=1024))
    @settings(max_examples=40, deadline=None)
    def test_property_arbitrary_bytes(self, data):
        codec = FpcCodec(table_bits=6)
        assert codec.decompress(codec.compress(data)) == data


class TestPrediction:
    def test_constant_stream_compresses_hard(self):
        data = np.full(4096, 1234.5678, dtype="<f8").tobytes()
        compressed = FpcCodec().compress(data)
        assert len(compressed) < len(data) / 8

    def test_linear_ramp_compresses_via_dfcm(self):
        # Constant deltas: DFCM predicts perfectly after warm-up.
        data = (np.arange(8192, dtype="<f8") * 0.5).tobytes()
        compressed = FpcCodec().compress(data)
        assert len(compressed) < len(data) / 3

    def test_random_mantissas_do_not_explode(self):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 1 << 52, 4096, dtype=np.uint64)
        data = (bits | np.uint64(0x3FF0000000000000)).view("<f8").tobytes()
        compressed = FpcCodec().compress(data)
        # Header nibble overhead only: bounded expansion.
        assert len(compressed) < len(data) * 1.1

    def test_smooth_beats_noise(self, smooth_doubles, noisy_doubles):
        codec = FpcCodec()
        cr_smooth = len(smooth_doubles) / len(codec.compress(smooth_doubles))
        cr_noise = len(noisy_doubles) / len(codec.compress(noisy_doubles))
        assert cr_smooth > cr_noise


class TestValidation:
    def test_table_bits_range(self):
        with pytest.raises(ValueError):
            FpcCodec(table_bits=2)
        with pytest.raises(ValueError):
            FpcCodec(table_bits=30)

    def test_truncated_stream(self):
        codec = FpcCodec()
        blob = codec.compress(np.arange(100, dtype="<f8").tobytes())
        with pytest.raises(CodecError):
            codec.decompress(blob[: len(blob) - 8])

    def test_corrupt_table_bits(self):
        codec = FpcCodec()
        blob = bytearray(codec.compress(np.arange(10, dtype="<f8").tobytes()))
        blob[1] = 99  # table_bits byte
        with pytest.raises(CodecError):
            codec.decompress(bytes(blob))
