"""Tests for the adaptive binary range coder."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors import CodecError, get_codec
from repro.compressors.rangecoder import (
    RangeCoderCodec,
    RangeDecoder,
    RangeEncoder,
)


class TestPrimitives:
    def test_bit_stream_roundtrip(self):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, 2000).tolist()
        probs = [1 << 10] * 4
        enc = RangeEncoder()
        for b in bits:
            enc.encode_bit(probs, 1, b)
        blob = enc.flush()
        probs = [1 << 10] * 4
        dec = RangeDecoder(blob)
        assert [dec.decode_bit(probs, 1) for _ in bits] == bits

    def test_skewed_bits_compress(self):
        bits = [0] * 5000 + [1] * 30
        probs = [1 << 10] * 4
        enc = RangeEncoder()
        for b in bits:
            enc.encode_bit(probs, 1, b)
        blob = enc.flush()
        assert len(blob) < len(bits) // 8  # far below 1 bit/symbol

    def test_short_stream_rejected(self):
        with pytest.raises(CodecError):
            RangeDecoder(b"\x00\x01")


class TestCodec:
    @pytest.mark.parametrize("order", [0, 1])
    @pytest.mark.parametrize(
        "data",
        [b"", b"z", b"abab" * 200, bytes(range(256)), b"\x00" * 3000],
        ids=["empty", "one", "cycle", "alphabet", "zeros"],
    )
    def test_roundtrips(self, order, data):
        codec = RangeCoderCodec(order=order)
        assert codec.decompress(codec.compress(data)) == data

    def test_order1_beats_order0_on_contextual_data(self):
        data = b"the quick brown fox jumps over the lazy dog " * 200
        o0 = len(RangeCoderCodec(order=0).compress(data))
        o1 = len(RangeCoderCodec(order=1).compress(data))
        assert o1 < o0

    def test_order0_beats_huffman_on_skewed_iid(self):
        rng = np.random.default_rng(1)
        data = bytes(rng.zipf(1.4, 20000).clip(0, 255).astype(np.uint8))
        rc = len(RangeCoderCodec(order=0).compress(data))
        hf = len(get_codec("huffman").compress(data))
        assert rc < hf  # fractional-bit coding + adaptation

    def test_incompressible_expansion_bounded(self):
        data = np.random.default_rng(2).bytes(4000)
        codec = RangeCoderCodec()
        assert len(codec.compress(data)) < len(data) * 1.05 + 16

    def test_order_validation(self):
        with pytest.raises(ValueError):
            RangeCoderCodec(order=2)

    def test_corrupt_order_byte(self):
        codec = RangeCoderCodec()
        blob = bytearray(codec.compress(b"hello world"))
        blob[1] = 9
        with pytest.raises(CodecError):
            codec.decompress(bytes(blob))

    def test_registered(self):
        assert isinstance(get_codec("rangecoder"), RangeCoderCodec)

    @given(st.binary(max_size=600))
    @settings(max_examples=25, deadline=None)
    def test_property_roundtrip(self, data):
        codec = RangeCoderCodec()
        assert codec.decompress(codec.compress(data)) == data

    def test_light_corruption_fuzz(self):
        codec = RangeCoderCodec()
        blob = bytearray(codec.compress(b"some data to protect" * 20))
        rng = np.random.default_rng(3)
        for _ in range(15):
            corrupted = bytearray(blob)
            corrupted[int(rng.integers(0, len(corrupted)))] ^= 0xFF
            try:
                codec.decompress(bytes(corrupted))
            except (CodecError, ValueError):
                pass


class TestModelReuse:
    """The persistent uint32 model buffer must never leak state."""

    def test_repeat_compress_is_deterministic(self):
        codec = RangeCoderCodec()
        data = b"state leak canary " * 64
        first = codec.compress(data)
        # Interleave other work through the same instance, then repeat.
        codec.decompress(codec.compress(bytes(range(256)) * 8))
        assert codec.compress(data) == first

    def test_matches_fresh_instance(self):
        veteran = RangeCoderCodec(order=1)
        for chunk in (b"warmup" * 100, b"\x00" * 4096, b"xyz" * 333):
            veteran.decompress(veteran.compress(chunk))
        data = bytes(np.random.default_rng(11).integers(0, 256, 2048, dtype=np.uint8))
        assert veteran.compress(data) == RangeCoderCodec(order=1).compress(data)

    def test_decompress_honors_stream_order(self):
        # An order-0 instance must still decode an order-1 stream (the
        # order byte travels with the stream), exercising the larger
        # model slice on the smaller instance.
        data = b"order mismatch " * 50
        blob = RangeCoderCodec(order=1).compress(data)
        assert RangeCoderCodec(order=0).decompress(blob) == data

    def test_buffer_is_reused(self):
        codec = RangeCoderCodec()
        buf = codec._model_buf
        codec.decompress(codec.compress(b"hold that buffer" * 30))
        assert codec._model_buf is buf
