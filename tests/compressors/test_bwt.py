"""Tests for the pybzip (BWT) codec and its stages."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors import CodecError, get_codec
from repro.compressors.bwt import (
    BwtCodec,
    bwt_inverse,
    bwt_transform,
    mtf_decode,
    mtf_encode,
)


def _u8(data: bytes) -> np.ndarray:
    return np.frombuffer(data, dtype=np.uint8)


class TestBwtTransform:
    def test_known_banana(self):
        # Classic cyclic-BWT example.
        last, primary = bwt_transform(_u8(b"banana"))
        restored = bwt_inverse(last, primary)
        assert restored.tobytes() == b"banana"

    def test_empty_and_single(self):
        last, primary = bwt_transform(_u8(b""))
        assert bwt_inverse(last, primary).tobytes() == b""
        last, primary = bwt_transform(_u8(b"q"))
        assert bwt_inverse(last, primary).tobytes() == b"q"

    def test_all_equal_bytes(self):
        last, primary = bwt_transform(_u8(b"aaaaaaaa"))
        assert bwt_inverse(last, primary).tobytes() == b"aaaaaaaa"

    def test_periodic_input(self):
        data = b"abab" * 100
        last, primary = bwt_transform(_u8(data))
        assert bwt_inverse(last, primary).tobytes() == data

    def test_groups_similar_context(self):
        # BWT of English-ish text should have longer runs than the input.
        data = b"she sells sea shells by the sea shore " * 50
        last, _ = bwt_transform(_u8(data))
        runs_in = np.count_nonzero(np.diff(_u8(data)) != 0)
        runs_out = np.count_nonzero(np.diff(last) != 0)
        assert runs_out < runs_in

    def test_primary_out_of_range_rejected(self):
        with pytest.raises(CodecError):
            bwt_inverse(_u8(b"abc"), 5)

    @given(st.binary(min_size=0, max_size=300))
    @settings(max_examples=80, deadline=None)
    def test_property_roundtrip(self, data):
        last, primary = bwt_transform(_u8(data))
        assert bwt_inverse(last, primary).tobytes() == data


class TestMtf:
    def test_known_sequence(self):
        ranks = mtf_encode(_u8(b"aaa"))
        assert ranks.tolist() == [ord("a"), 0, 0]

    def test_roundtrip(self):
        data = _u8(b"mississippi river runs")
        assert np.array_equal(mtf_decode(mtf_encode(data)), data)

    def test_local_reuse_gives_small_ranks(self):
        data = _u8(b"aaabbbaaabbb" * 20)
        ranks = mtf_encode(data)
        assert (ranks[5:] <= 2).mean() > 0.95

    @given(st.binary(max_size=400))
    @settings(max_examples=60, deadline=None)
    def test_property_roundtrip(self, data):
        arr = _u8(data)
        assert np.array_equal(mtf_decode(mtf_encode(arr)), arr)


class TestBwtCodec:
    @pytest.mark.parametrize(
        "data",
        [b"", b"x", b"ab" * 5000, b"\x00" * 20000, b"compression " * 500],
        ids=["empty", "one", "cycle", "zeros", "text"],
    )
    def test_roundtrips(self, data):
        codec = BwtCodec()
        assert codec.decompress(codec.compress(data)) == data

    def test_multi_block_roundtrip(self):
        codec = BwtCodec(block_size=1024)
        data = (b"block boundary test " * 300)[:5000]
        assert codec.decompress(codec.compress(data)) == data

    def test_float_roundtrip(self, noisy_doubles):
        codec = BwtCodec(block_size=16384)
        assert codec.decompress(codec.compress(noisy_doubles)) == noisy_doubles

    def test_beats_huffman_on_text(self):
        data = b"she sells sea shells by the sea shore " * 200
        bwt_size = len(BwtCodec().compress(data))
        huff_size = len(get_codec("huffman").compress(data))
        assert bwt_size < huff_size

    def test_block_size_validation(self):
        with pytest.raises(ValueError):
            BwtCodec(block_size=4)

    def test_registered_as_pybzip(self):
        assert isinstance(get_codec("pybzip"), BwtCodec)

    @given(st.binary(max_size=1500))
    @settings(max_examples=30, deadline=None)
    def test_property_roundtrip(self, data):
        codec = BwtCodec(block_size=512)
        assert codec.decompress(codec.compress(data)) == data
