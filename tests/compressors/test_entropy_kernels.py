"""Adversarial equivalence suite for the batch entropy kernels.

Pins the two backend contracts from :mod:`repro.compressors.kernels`
against a corpus built to hit every structural edge of the matcher and
the BWT stack:

* **LZ77 parse equivalence** -- the batch parse is round-trip exact and
  each backend decodes the other's token stream.  Compressed *bytes*
  may differ (the batch matcher can pick different, equally valid
  matches), so byte-identity is deliberately NOT asserted for
  ``pyzlib`` encode.
* **BWT-stack byte-identity** -- ``mtf_encode`` / ``mtf_decode`` /
  ``rle0_encode`` / ``rle0_decode`` / ``bwt_inverse`` are deterministic
  transforms and must match the reference output exactly, so whole
  ``pybzip`` streams are backend-independent.

The corpus: byte-run soups (run-interior pruning), repeated-region
soups (hash chains + long extends), short-period strings (overlapping
matches, the mismatch-index cache), incompressible noise (scout probe
rejects, stored blocks), mixed regimes, tiny/empty inputs, and inputs
straddling the matcher's wave-segment boundary.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.compressors import bwt as bwtmod
from repro.compressors import kernels as batch
from repro.compressors import lz77 as ref
from repro.compressors.bwt import BwtCodec, bwt_transform
from repro.compressors.deflate import DeflateCodec


def _corpus() -> list[tuple[str, bytes]]:
    rng = random.Random(7)
    cases: list[tuple[str, bytes]] = []
    for n in (1, 3, 17, 1000, 65537):
        cases.append((f"run-{n}", b"A" * n))
    cases.append(
        (
            "run-soup",
            b"".join(
                bytes([rng.randrange(4)]) * rng.randrange(1, 40)
                for _ in range(1500)
            ),
        )
    )
    base = bytes(rng.randrange(256) for _ in range(512))
    cases.append(
        (
            "repeat-soup",
            b"".join(
                base[rng.randrange(0, 256) : rng.randrange(256, 512)]
                for _ in range(200)
            ),
        )
    )
    for p in (1, 2, 3, 4, 7, 15):
        pat = bytes(rng.randrange(256) for _ in range(p))
        cases.append((f"periodic-{p}", pat * (20000 // p)))
    cases.append(
        ("noise", bytes(rng.randrange(256) for _ in range(30000)))
    )
    mix = bytearray()
    for _ in range(150):
        r = rng.random()
        if r < 0.4:
            mix += bytes([rng.randrange(8)]) * rng.randrange(1, 300)
        elif r < 0.7:
            mix += bytes(
                rng.randrange(256) for _ in range(rng.randrange(1, 200))
            )
        else:
            mix += base[: rng.randrange(1, 512)]
    cases.append(("mixed", bytes(mix)))
    for s in (b"", b"a", b"ab", b"abc", b"abcd", b"aab", b"abcabc"):
        cases.append((f"tiny-{len(s)}-{s.decode() or 'empty'}", s))
    # Wave-segment boundary (the matcher batches positions in 32768-wide
    # segments): matches and regime changes that straddle the seam.
    cases.append(("straddle-periodic", (b"xyz" * 11000)[:32769]))
    cases.append(
        (
            "straddle-run-noise",
            b"\x01" * 32767
            + bytes(rng.randrange(256) for _ in range(100)),
        )
    )
    cases.append(
        (
            "straddle-noise-run",
            bytes(rng.randrange(256) for _ in range(32700)) + b"\x09" * 5000,
        )
    )
    return cases


CORPUS = _corpus()
CORPUS_IDS = [name for name, _ in CORPUS]

# (max_chain, lazy): min/default/deep greedy plus both lazy tiers.
LEVELS = [(1, False), (4, False), (32, False), (64, True), (256, True)]
LEVEL_IDS = [f"chain{c}{'-lazy' if lz else ''}" for c, lz in LEVELS]


@pytest.mark.parametrize(("name", "data"), CORPUS, ids=CORPUS_IDS)
class TestLz77ParseEquivalence:
    @pytest.mark.parametrize(("chain", "lazy"), LEVELS, ids=LEVEL_IDS)
    def test_roundtrip_and_cross_decode(self, name, data, chain, lazy):
        s_bat = batch.tokenize(data, max_chain=chain, lazy=lazy)
        s_ref = ref.tokenize(data, max_chain=chain, lazy=lazy)
        # Batch parse round-trips under both reassemblers ...
        assert batch.reassemble(s_bat) == data
        assert ref.reassemble(s_bat) == data
        # ... and the batch reassembler decodes the reference parse.
        assert batch.reassemble(s_ref) == data

    def test_token_streams_are_valid(self, name, data):
        s_bat = batch.tokenize(data, max_chain=32)
        s_bat.validate()
        if s_bat.n_matches:
            assert int(s_bat.match_lens.min()) >= ref.MIN_MATCH
            assert int(s_bat.match_dists.min()) >= 1


@pytest.mark.parametrize(("name", "data"), CORPUS, ids=CORPUS_IDS)
class TestBwtStackByteIdentity:
    def test_stagewise(self, name, data):
        arr = np.frombuffer(data, dtype=np.uint8)
        last, primary = bwt_transform(arr)
        ranks_ref = bwtmod.mtf_encode(last)
        ranks_bat = batch.mtf_encode(last)
        np.testing.assert_array_equal(ranks_bat, ranks_ref)
        syms_ref = bwtmod._rle0_encode(ranks_ref)
        syms_bat = batch.rle0_encode(ranks_ref)
        np.testing.assert_array_equal(syms_bat, syms_ref)
        np.testing.assert_array_equal(
            batch.rle0_decode(syms_ref, max_size=arr.size),
            bwtmod._rle0_decode(syms_ref),
        )
        np.testing.assert_array_equal(batch.mtf_decode(ranks_ref), last)
        np.testing.assert_array_equal(
            batch.bwt_inverse(last, primary), arr
        )


class TestCodecBackends:
    """Whole-codec behaviour across ``kernels=`` backends."""

    @pytest.mark.parametrize(("name", "data"), CORPUS, ids=CORPUS_IDS)
    def test_pybzip_streams_byte_identical(self, name, data):
        blob_bat = BwtCodec(kernels="batch").compress(data)
        blob_ref = BwtCodec(kernels="reference").compress(data)
        assert blob_bat == blob_ref
        assert BwtCodec(kernels="batch").decompress(blob_ref) == data
        assert BwtCodec(kernels="reference").decompress(blob_bat) == data

    @pytest.mark.parametrize(("name", "data"), CORPUS, ids=CORPUS_IDS)
    def test_pyzlib_cross_backend_decode(self, name, data):
        for level in (1, 6, 9):
            blob_bat = DeflateCodec(level=level, kernels="batch").compress(
                data
            )
            blob_ref = DeflateCodec(
                level=level, kernels="reference"
            ).compress(data)
            assert (
                DeflateCodec(level=level, kernels="reference").decompress(
                    blob_bat
                )
                == data
            )
            assert (
                DeflateCodec(level=level, kernels="batch").decompress(
                    blob_ref
                )
                == data
            )

    def test_pyzlib_ratio_stays_close(self):
        # The parse-equivalence contract allows different bytes; keep
        # the drift honest (within a few percent either way).
        rng = random.Random(3)
        base = bytes(rng.randrange(256) for _ in range(512))
        data = b"".join(
            base[rng.randrange(0, 256) : rng.randrange(256, 512)]
            for _ in range(300)
        )
        for level in (1, 6, 9):
            n_bat = len(DeflateCodec(level=level).compress(data))
            n_ref = len(
                DeflateCodec(level=level, kernels="reference").compress(data)
            )
            assert n_bat <= n_ref * 1.08
            assert n_ref <= n_bat * 1.08

    def test_backend_validation(self):
        with pytest.raises(ValueError):
            DeflateCodec(kernels="simd")
        with pytest.raises(ValueError):
            BwtCodec(kernels="simd")


class TestKernelEdgeCases:
    def test_rle0_decode_bounds_expansion(self):
        from repro.compressors.base import CodecError

        # RUNA digits decode to a huge zero run; the cap must trip
        # before any giant allocation.
        bomb = np.zeros(64, dtype=np.int64)  # 2^64-ish zeros
        with pytest.raises(CodecError):
            batch.rle0_decode(bomb, max_size=1 << 20)

    def test_empty_arrays(self):
        empty_u8 = np.zeros(0, dtype=np.uint8)
        empty_i64 = np.zeros(0, dtype=np.int64)
        assert batch.mtf_encode(empty_u8).size == 0
        assert batch.mtf_decode(empty_i64).size == 0
        assert batch.rle0_encode(empty_i64).size == 0
        assert batch.rle0_decode(empty_i64, max_size=0).size == 0
        assert batch.bwt_inverse(empty_u8, 0).size == 0

    def test_tokenize_kwargs_match_reference(self):
        data = b"kernel kwargs must agree " * 40
        for kw in (
            {"min_match": 5},
            {"max_chain": 0},
            {"skip_trigger": 2},
        ):
            s = batch.tokenize(data, **kw)
            assert batch.reassemble(s) == data
            assert ref.reassemble(s) == data
