"""Tests for bucketed integer coding."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors import CodecError
from repro.compressors._buckets import (
    MAX_BUCKET,
    _bucket_codes,
    decode_bucketed,
    encode_bucketed,
)


class TestBucketCodes:
    def test_zero_gets_code_zero(self):
        assert _bucket_codes(np.array([0]))[0] == 0

    @pytest.mark.parametrize("value,code", [(1, 1), (2, 2), (3, 2), (4, 3), (255, 8), (256, 9), (1023, 10), (1024, 11)])
    def test_bit_length_codes(self, value, code):
        assert _bucket_codes(np.array([value]))[0] == code

    def test_exact_powers_of_two(self):
        values = np.array([1 << k for k in range(40)])
        codes = _bucket_codes(values)
        assert np.array_equal(codes, np.arange(1, 41))

    def test_powers_of_two_minus_one(self):
        values = np.array([(1 << k) - 1 for k in range(1, 40)])
        codes = _bucket_codes(values)
        assert np.array_equal(codes, np.arange(1, 40))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            _bucket_codes(np.array([-1]))

    def test_too_large_rejected(self):
        with pytest.raises(ValueError):
            _bucket_codes(np.array([1 << (MAX_BUCKET + 1)]))


class TestRoundtrip:
    def test_empty(self):
        blob = encode_bucketed(np.zeros(0, np.int64))
        out, pos = decode_bucketed(blob)
        assert out.size == 0 and pos == len(blob)

    def test_mixed_values(self):
        values = np.array([0, 1, 2, 3, 100, 65535, 65536, 12345678, 0, 7])
        blob = encode_bucketed(values)
        out, pos = decode_bucketed(blob)
        assert pos == len(blob)
        assert np.array_equal(out, values)

    def test_all_zeros(self):
        values = np.zeros(1000, np.int64)
        blob = encode_bucketed(values)
        out, _ = decode_bucketed(blob)
        assert np.array_equal(out, values)

    def test_sequential_blobs(self):
        a = np.array([5, 10, 15])
        b = np.array([1000, 2000])
        blob = encode_bucketed(a) + encode_bucketed(b)
        out_a, pos = decode_bucketed(blob)
        out_b, pos = decode_bucketed(blob, pos)
        assert np.array_equal(out_a, a)
        assert np.array_equal(out_b, b)
        assert pos == len(blob)

    def test_truncated_rejected(self):
        blob = encode_bucketed(np.arange(1000))
        with pytest.raises((CodecError, ValueError)):
            decode_bucketed(blob[: len(blob) // 2])

    @given(st.lists(st.integers(0, 2**39), max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_property_roundtrip(self, values):
        arr = np.array(values, dtype=np.int64)
        out, _ = decode_bucketed(encode_bucketed(arr))
        assert np.array_equal(out, arr)

    def test_compresses_skewed_values(self):
        # Mostly-small values should cost little more than 1-2 bits each.
        rng = np.random.default_rng(0)
        values = rng.zipf(2.0, 20000).clip(0, 1 << 30)
        blob = encode_bucketed(values)
        assert len(blob) < values.size  # < 8 bits per value
