"""Failure injection: corrupt compressed streams must fail *cleanly*.

Contract: ``decompress`` on malformed input either returns bytes (silent
mis-decode is permitted only for codecs without integrity checks) or
raises ``CodecError`` / ``ValueError``.  It must never raise anything
else (IndexError, OverflowError, ...), hang, or crash the interpreter --
a corrupted checkpoint must not take the analysis pipeline down with it.

The PRIMACY container additionally carries Adler-32 chunk checksums, so
single-byte payload corruption must be *detected*, not just survived.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compressors import CodecError, available_codecs, get_codec
from repro.datasets import generate_bytes

_ALLOWED = (CodecError, ValueError)
_TRIALS = 60


@pytest.fixture(scope="module")
def sample() -> bytes:
    return generate_bytes("obs_temp", 2048, seed=0)


def _corruptions(blob: bytes, rng: np.random.Generator):
    """Yield corrupted variants: bit flips, truncations, burst damage."""
    for trial in range(_TRIALS):
        corrupted = bytearray(blob)
        mode = trial % 3
        if mode == 0 and len(corrupted) > 1:
            pos = int(rng.integers(0, len(corrupted)))
            corrupted[pos] ^= int(rng.integers(1, 256))
        elif mode == 1:
            corrupted = corrupted[: int(rng.integers(0, len(corrupted)))]
        else:
            for _ in range(5):
                pos = int(rng.integers(0, len(corrupted)))
                corrupted[pos] ^= int(rng.integers(1, 256))
        yield bytes(corrupted)


@pytest.mark.parametrize(
    "name", [n for n in available_codecs() if n != "rangecoder"]
)
def test_corruption_fails_cleanly(name, sample):
    codec = get_codec(name)
    blob = codec.compress(sample)
    import zlib as _zlib

    rng = np.random.default_rng(_zlib.crc32(name.encode()))
    for corrupted in _corruptions(blob, rng):
        try:
            codec.decompress(corrupted)
        except _ALLOWED:
            pass  # clean failure


def test_primacy_checksum_detects_payload_corruption(sample):
    """Flipping bytes inside chunk payloads must raise, not mis-decode."""
    codec = get_codec("primacy", chunk_bytes=8 * 1024)
    blob = bytearray(codec.compress(sample))
    rng = np.random.default_rng(1)
    detected = 0
    survived_identical = 0
    trials = 40
    for _ in range(trials):
        corrupted = bytearray(blob)
        # Stay away from the global header (first 32 bytes).
        pos = int(rng.integers(32, len(corrupted)))
        corrupted[pos] ^= int(rng.integers(1, 256))
        try:
            out = codec.decompress(bytes(corrupted))
        except (CodecError, ValueError):
            detected += 1
        else:
            if out == sample:
                survived_identical += 1  # hit padding / ignored bits
    # Every undetected corruption must have been semantically harmless.
    assert detected + survived_identical == trials
    assert detected > trials // 2


@pytest.mark.parametrize("name", ["pyzlib", "huffman", "primacy"])
def test_garbage_input_fails_cleanly(name):
    codec = get_codec(name)
    rng = np.random.default_rng(2)
    for size in (0, 1, 7, 100, 4096):
        garbage = rng.bytes(size)
        try:
            codec.decompress(garbage)
        except _ALLOWED:
            pass
