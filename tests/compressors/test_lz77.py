"""Tests for the LZ77 tokenizer and reassembler."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors import CodecError
from repro.compressors.lz77 import (
    MIN_MATCH,
    TokenStream,
    collect_parse_stats,
    reassemble,
    tokenize,
)


class TestTokenize:
    def test_empty(self):
        stream = tokenize(b"")
        assert stream.n_matches == 0
        assert reassemble(stream) == b""

    def test_short_input_all_literal(self):
        stream = tokenize(b"ab")
        assert stream.n_matches == 0
        assert stream.literals == b"ab"

    def test_run_produces_overlapping_match(self):
        data = b"A" * 1000
        stream = tokenize(data)
        assert stream.n_matches >= 1
        # The bulk of the run must come from matches, not literals.
        assert len(stream.literals) < 10
        assert int(stream.match_dists.min()) >= 1

    def test_repeated_phrase_found(self):
        phrase = b"the quick brown fox "
        data = phrase * 50
        stream = tokenize(data)
        assert stream.n_matches >= 1
        assert int(stream.match_lens.max()) >= len(phrase)

    def test_incompressible_mostly_literal(self):
        data = np.random.default_rng(0).integers(0, 256, 20000, dtype=np.uint8).tobytes()
        stream = tokenize(data)
        assert len(stream.literals) > 0.9 * len(data)

    def test_min_match_respected(self):
        stream = tokenize(b"abcXabcYabcZ" * 20, min_match=5)
        if stream.n_matches:
            assert int(stream.match_lens.min()) >= 5

    def test_min_match_validation(self):
        with pytest.raises(ValueError):
            tokenize(b"xx", min_match=2)

    def test_max_chain_zero_disables_matching(self):
        data = b"hello hello hello hello hello"
        stream = tokenize(data, max_chain=0)
        assert stream.n_matches == 0
        assert reassemble(stream) == data


class TestReassemble:
    @pytest.mark.parametrize(
        "data",
        [
            b"",
            b"a",
            b"abcabcabcabc",
            b"x" * 5000,
            b"ab" * 3000,
            bytes(range(256)) * 20,
            b"mississippi " * 100,
        ],
    )
    def test_roundtrips(self, data):
        assert reassemble(tokenize(data)) == data

    def test_roundtrip_float_data(self, noisy_doubles):
        assert reassemble(tokenize(noisy_doubles)) == noisy_doubles

    def test_invalid_distance_rejected(self):
        stream = TokenStream(
            lit_runs=np.array([1, 0]),
            match_lens=np.array([MIN_MATCH]),
            match_dists=np.array([5]),  # reaches before the start
            literals=b"a",
            original_size=1 + MIN_MATCH,
        )
        with pytest.raises(CodecError):
            reassemble(stream)

    def test_validate_catches_bad_shapes(self):
        stream = TokenStream(
            lit_runs=np.array([1]),
            match_lens=np.array([MIN_MATCH]),
            match_dists=np.array([1]),
            literals=b"a",
            original_size=5,
        )
        with pytest.raises(CodecError, match="one more entry"):
            stream.validate()

    def test_validate_catches_size_mismatch(self):
        stream = TokenStream(
            lit_runs=np.array([2, 0]),
            match_lens=np.array([MIN_MATCH]),
            match_dists=np.array([1]),
            literals=b"ab",
            original_size=99,
        )
        with pytest.raises(CodecError, match="cover"):
            stream.validate()

    def test_validate_catches_short_match(self):
        stream = TokenStream(
            lit_runs=np.array([2, 0]),
            match_lens=np.array([2]),
            match_dists=np.array([1]),
            literals=b"ab",
            original_size=4,
        )
        with pytest.raises(CodecError, match="MIN_MATCH"):
            stream.validate()

    @given(st.binary(max_size=4000))
    @settings(max_examples=60, deadline=None)
    def test_property_roundtrip(self, data):
        assert reassemble(tokenize(data)) == data

    @given(
        st.binary(min_size=1, max_size=64),
        st.integers(2, 50),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_periodic_roundtrip(self, block, reps):
        data = block * reps
        assert reassemble(tokenize(data)) == data


class TestLazyMatching:
    @pytest.mark.parametrize(
        "data",
        [b"aXbcdef abcdefgh " * 200, b"mississippi " * 300, b"x" * 2000],
    )
    def test_lazy_roundtrips(self, data):
        assert reassemble(tokenize(data, lazy=True)) == data

    def test_lazy_never_produces_worse_coverage(self):
        # Token streams must cover the input exactly under both modes.
        data = b"abcabcabdabcabc" * 100
        for lazy in (False, True):
            stream = tokenize(data, lazy=lazy)
            stream.validate()

    def test_lazy_prefers_longer_deferred_match(self):
        # 'bcdefgh' (7) at i+1 should beat 'abc' (shorter) at i.
        prefix = b"0123bcdefgh4567abc89"
        data = prefix + b"!abcdefgh!" * 4
        greedy = tokenize(data, lazy=False, max_chain=64)
        lazy = tokenize(data, lazy=True, max_chain=64)
        assert reassemble(lazy) == data
        if lazy.n_matches and greedy.n_matches:
            assert int(lazy.match_lens.max()) >= int(greedy.match_lens.max())

    @given(st.binary(max_size=2000))
    @settings(max_examples=30, deadline=None)
    def test_property_lazy_roundtrip(self, data):
        assert reassemble(tokenize(data, lazy=True)) == data


class TestParseStats:
    """The instrumented parse (collect_parse_stats) vs the plain parse."""

    def _assert_same_stream(self, a, b):
        assert a.literals == b.literals
        assert np.array_equal(a.lit_runs, b.lit_runs)
        assert np.array_equal(a.match_lens, b.match_lens)
        assert np.array_equal(a.match_dists, b.match_dists)
        assert a.original_size == b.original_size

    @given(st.binary(max_size=3000), st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_property_counted_parse_is_equivalent(self, data, lazy):
        plain = tokenize(data, lazy=lazy)
        with collect_parse_stats() as stats:
            counted = tokenize(data, lazy=lazy)
        self._assert_same_stream(plain, counted)
        assert stats.input_bytes == len(data)
        assert stats.literal_bytes + stats.match_bytes == len(data)
        assert stats.literal_bytes == len(plain.literals)

    def test_counters_are_deterministic(self):
        data = (b"abcdabcd" + bytes(range(64))) * 100
        runs = []
        for _ in range(2):
            with collect_parse_stats() as stats:
                tokenize(data)
            runs.append(
                (stats.work, stats.literal_bytes, stats.match_bytes)
            )
        assert runs[0] == runs[1]
        assert runs[0][0] > 0

    def test_counts_accumulate_across_parses(self):
        with collect_parse_stats() as stats:
            tokenize(b"mississippi " * 50)
            tokenize(b"mississippi " * 50)
        assert stats.input_bytes == 2 * len(b"mississippi " * 50)

    def test_nested_collection_restores_outer(self):
        with collect_parse_stats() as outer:
            tokenize(b"abab" * 100)
            with collect_parse_stats() as inner:
                tokenize(b"cdcd" * 100)
            tokenize(b"abab" * 100)
        assert inner.input_bytes == 400
        assert outer.input_bytes == 800

    def test_no_counting_outside_block(self):
        with collect_parse_stats() as stats:
            pass
        tokenize(b"mississippi " * 50)
        assert stats.input_bytes == 0

    def test_tiny_input_counts_as_literals(self):
        with collect_parse_stats() as stats:
            tokenize(b"ab")
        assert stats.input_bytes == 2
        assert stats.literal_bytes == 2
        assert stats.work == 0

    def test_compressible_needs_less_work_than_noise(self):
        rng = np.random.default_rng(11)
        noise = rng.integers(0, 256, 8192, dtype=np.uint8).tobytes()
        smooth = (b"abcdefgh" * 1024)[:8192]
        with collect_parse_stats() as noisy:
            tokenize(noise)
        with collect_parse_stats() as easy:
            tokenize(smooth)
        assert noisy.literal_bytes > easy.literal_bytes
        assert easy.match_bytes > noisy.match_bytes
