"""Tests for the fpzip-style Lorenzo-predictor codec."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors import CodecError
from repro.compressors.fpzip import (
    FpzipCodec,
    float_to_ordered,
    ordered_to_float,
)


class TestOrderMap:
    def test_bijective_on_patterns(self):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 1 << 63, 10000, dtype=np.uint64)
        bits = np.concatenate([bits, bits | np.uint64(1 << 63)])
        vals = bits.view("<f8")
        assert ordered_to_float(float_to_ordered(vals)).tobytes() == vals.tobytes()

    def test_order_preserving(self):
        vals = np.array([-np.inf, -1e10, -1.0, -0.0, 0.0, 1e-300, 1.0, np.inf])
        ordered = float_to_ordered(vals)
        # -0.0 and 0.0 are adjacent integers; everything else strictly sorted.
        assert np.all(np.diff(ordered.astype(np.float64)) >= 0)

    def test_special_values_roundtrip(self):
        vals = np.array([np.nan, np.inf, -np.inf, 0.0, -0.0, 5e-324])
        assert ordered_to_float(float_to_ordered(vals)).tobytes() == vals.tobytes()


class TestRoundtrip:
    @pytest.mark.parametrize("shape", [None, (64,), (16, 16), (8, 8, 8)])
    def test_shapes(self, shape):
        rng = np.random.default_rng(1)
        data = rng.normal(100, 1, 4096).astype("<f8").tobytes()
        codec = FpzipCodec(shape=shape)
        assert codec.decompress(codec.compress(data)) == data

    def test_empty_and_tail(self):
        codec = FpzipCodec()
        assert codec.decompress(codec.compress(b"")) == b""
        data = np.arange(5, dtype="<f8").tobytes() + b"AB"
        assert codec.decompress(codec.compress(data)) == data

    def test_data_not_multiple_of_field(self):
        # 100 values with 16x16 fields: 100 < 256, so everything goes to the
        # 1-D remainder path.
        data = np.random.default_rng(2).normal(0, 1, 100).astype("<f8").tobytes()
        codec = FpzipCodec(shape=(16, 16))
        assert codec.decompress(codec.compress(data)) == data

    @given(st.lists(st.floats(width=64, allow_nan=False), max_size=150))
    @settings(max_examples=50, deadline=None)
    def test_property_roundtrip(self, values):
        data = np.array(values, dtype="<f8").tobytes()
        codec = FpzipCodec()
        assert codec.decompress(codec.compress(data)) == data

    @given(st.binary(max_size=1024))
    @settings(max_examples=40, deadline=None)
    def test_property_arbitrary_bytes(self, data):
        codec = FpzipCodec()
        assert codec.decompress(codec.compress(data)) == data


class TestPredictor:
    def test_smooth_2d_field_compresses(self):
        # Lossless float compression of a smooth analytic field: the Lorenzo
        # residuals drop ~2 bytes of each double (CR ~1.3, like real fpzip
        # in lossless mode).
        x, y = np.meshgrid(np.linspace(0, 4, 64), np.linspace(0, 4, 64))
        field = np.sin(x) * np.cos(y) + 2.5
        data = field.astype("<f8").tobytes()
        codec = FpzipCodec(shape=(64, 64))
        assert len(codec.compress(data)) < len(data) * 0.8

    def test_quantized_smooth_field_compresses_hard(self):
        # With mantissas rounded to 20 bits the residuals nearly vanish.
        x, y = np.meshgrid(np.linspace(0, 4, 64), np.linspace(0, 4, 64))
        field = np.sin(x) * np.cos(y) + 2.5
        m, e = np.frexp(field)
        field = np.ldexp(np.round(m * 2**20) / 2**20, e)
        data = field.astype("<f8").tobytes()
        codec = FpzipCodec(shape=(64, 64))
        assert len(codec.compress(data)) < len(data) / 2

    def test_2d_predictor_beats_1d_on_2d_data(self):
        x, y = np.meshgrid(np.linspace(0, 9, 64), np.linspace(0, 9, 64))
        field = (np.sin(x) + np.cos(3 * y)) * 100
        data = np.ascontiguousarray(field, dtype="<f8").tobytes()
        size_2d = len(FpzipCodec(shape=(64, 64)).compress(data))
        size_1d = len(FpzipCodec().compress(data))
        assert size_2d < size_1d

    def test_permutation_destroys_prediction(self):
        vals = np.cumsum(np.random.default_rng(3).normal(0, 0.01, 8192)) + 50
        data = vals.astype("<f8").tobytes()
        rng = np.random.default_rng(4)
        permuted = vals[rng.permutation(vals.size)].astype("<f8").tobytes()
        codec = FpzipCodec()
        assert len(codec.compress(permuted)) > len(codec.compress(data))


class TestValidation:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            FpzipCodec(shape=(0, 4))
        with pytest.raises(ValueError):
            FpzipCodec(shape=(2, 2, 2, 2, 2))

    def test_payload_mismatch_rejected(self):
        codec = FpzipCodec()
        blob = bytearray(codec.compress(np.arange(64, dtype="<f8").tobytes()))
        with pytest.raises((CodecError, ValueError)):
            codec.decompress(bytes(blob[: len(blob) - 16]))
