"""Tests for the pyzlib (DEFLATE-style) codec."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors import CodecError, get_codec
from repro.compressors.deflate import DeflateCodec


class TestRoundtrip:
    @pytest.mark.parametrize(
        "data",
        [
            b"",
            b"a",
            b"abc",
            b"aaaa" * 1000,
            b"the quick brown fox " * 200,
            bytes(range(256)) * 16,
        ],
        ids=["empty", "one", "short", "runs", "phrases", "cycle"],
    )
    def test_basic(self, data):
        codec = DeflateCodec()
        assert codec.decompress(codec.compress(data)) == data

    def test_random_data_roundtrip(self, random_bytes):
        codec = DeflateCodec()
        assert codec.decompress(codec.compress(random_bytes)) == random_bytes

    def test_float_data_roundtrip(self, noisy_doubles):
        codec = DeflateCodec()
        assert codec.decompress(codec.compress(noisy_doubles)) == noisy_doubles

    @given(st.binary(max_size=2000))
    @settings(max_examples=50, deadline=None)
    def test_property_roundtrip(self, data):
        codec = DeflateCodec(level=3)
        assert codec.decompress(codec.compress(data)) == data


class TestBehaviour:
    def test_incompressible_expansion_bounded(self, random_bytes):
        codec = DeflateCodec()
        compressed = codec.compress(random_bytes)
        # Stored-block escape: tiny overhead only.
        assert len(compressed) <= len(random_bytes) + 10

    def test_compressible_data_shrinks(self):
        data = b"checkpoint-restart " * 500
        assert len(DeflateCodec().compress(data)) < len(data) // 4

    def test_levels_tradeoff(self):
        # Higher level searches deeper; ratio must not get worse.
        data = (b"pattern-%d " % 7) * 300 + bytes(range(200)) * 30
        fast = len(DeflateCodec(level=1).compress(data))
        best = len(DeflateCodec(level=9).compress(data))
        assert best <= fast

    def test_level_validation(self):
        with pytest.raises(ValueError):
            DeflateCodec(level=0)
        with pytest.raises(ValueError):
            DeflateCodec(level=10)

    def test_registered_as_pyzlib(self):
        assert isinstance(get_codec("pyzlib"), DeflateCodec)


class TestCorruptStreams:
    def test_truncated(self):
        codec = DeflateCodec()
        blob = codec.compress(b"some compressible data " * 50)
        with pytest.raises((CodecError, ValueError)):
            codec.decompress(blob[: len(blob) - 10])

    def test_unknown_mode(self):
        codec = DeflateCodec()
        blob = bytearray(codec.compress(b"hello world, hello world"))
        # Mode byte follows the uvarint length (first byte here).
        blob[1] = 0xEE
        with pytest.raises(CodecError, match="mode"):
            codec.decompress(bytes(blob))

    def test_truncated_stored_block(self):
        codec = DeflateCodec()
        blob = codec.compress(np.random.default_rng(1).bytes(100))
        with pytest.raises(CodecError):
            codec.decompress(blob[:50])
