"""Tests for the pylzo (LZRW1-style) codec."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors import CodecError, get_codec
from repro.compressors.lzrw import LzrwCodec


class TestRoundtrip:
    @pytest.mark.parametrize(
        "data",
        [
            b"",
            b"z",
            b"ab",
            b"abc" * 2000,
            b"x" * 10000,
            bytes(range(256)) * 8,
            b"lzo is fast " * 100,
        ],
        ids=["empty", "one", "two", "cycle3", "run", "cycle256", "phrases"],
    )
    def test_basic(self, data):
        codec = LzrwCodec()
        assert codec.decompress(codec.compress(data)) == data

    def test_random_roundtrip(self, random_bytes):
        codec = LzrwCodec()
        assert codec.decompress(codec.compress(random_bytes)) == random_bytes

    def test_float_roundtrip(self, smooth_doubles):
        codec = LzrwCodec()
        assert codec.decompress(codec.compress(smooth_doubles)) == smooth_doubles

    @given(st.binary(max_size=3000))
    @settings(max_examples=60, deadline=None)
    def test_property_roundtrip(self, data):
        codec = LzrwCodec()
        assert codec.decompress(codec.compress(data)) == data


class TestProfile:
    def test_weaker_than_pyzlib_on_text(self):
        data = b"the entropy coder makes the difference " * 200
        lzo_size = len(LzrwCodec().compress(data))
        zlib_size = len(get_codec("pyzlib").compress(data))
        assert zlib_size < lzo_size

    def test_faster_than_pyzlib_on_mixed_data(self, noisy_doubles):
        import time

        lzo = LzrwCodec()
        zlib_like = get_codec("pyzlib")
        t0 = time.perf_counter()
        lzo.compress(noisy_doubles)
        t_lzo = time.perf_counter() - t0
        t0 = time.perf_counter()
        zlib_like.compress(noisy_doubles)
        t_zlib = time.perf_counter() - t0
        assert t_lzo < t_zlib

    def test_incompressible_expansion_bounded(self, random_bytes):
        assert len(LzrwCodec().compress(random_bytes)) <= len(random_bytes) + 10

    def test_window_limit_respected(self):
        # Matches farther than 4095 bytes back cannot be encoded; data
        # repeating at a longer period must still round-trip.
        block = np.random.default_rng(3).bytes(5000)
        data = block * 3
        codec = LzrwCodec()
        assert codec.decompress(codec.compress(data)) == data


class TestCorruptStreams:
    def test_unknown_mode(self):
        codec = LzrwCodec()
        blob = bytearray(codec.compress(b"hello hello hello hello"))
        blob[1] = 0x77
        with pytest.raises(CodecError, match="mode"):
            codec.decompress(bytes(blob))

    def test_truncated(self):
        codec = LzrwCodec()
        blob = codec.compress(b"abcabcabc" * 100)
        with pytest.raises((CodecError, ValueError)):
            codec.decompress(blob[: len(blob) // 2])

    def test_invalid_offset_rejected(self):
        # Hand-craft a stream whose first record is a match reaching before
        # the start of the output: uvarint run=1, literal 'a', match with
        # offset 5 but only 1 byte produced so far.
        from repro.util.varint import encode_uvarint

        bad = (
            encode_uvarint(10)
            + bytes([1])  # compressed mode
            + encode_uvarint(1)
            + b"a"
            + bytes([0x00, 0x05])  # len=3, offset=5 > len(out)=1
        )
        with pytest.raises(CodecError, match="offset"):
            LzrwCodec().decompress(bad)
