"""Regression tests for the compressibility-probe estimator fixes.

Three historical bugs, each pinned here:

1. ``recommend()`` hardcoded ``alpha1=1.0, alpha2=0.0, sigma_lo=1.0``,
   discarding the fractions the probe had just measured -- the verdict
   could not react to how much of the low-order stream ISOBAR decided to
   compress, nor to how well it compressed.
2. ``recommend()`` derived the stage rates from one end-to-end figure
   with magic unit constants (``primacy_mbps * 4e6`` / ``* 1e6``)
   instead of measuring the preconditioner and entropy stages.
3. ``_strided_sample`` silently under-filled the budget (each of the 16
   pieces was rounded down independently, e.g. a 1000-byte budget
   yielded 896 bytes) and degenerated to a prefix for small budgets.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import estimate_compressibility
from repro.analysis.probe import _strided_sample, CompressibilityProbe


def _probe(alpha2: float, sigma_lo: float) -> CompressibilityProbe:
    """A probe whose non-varied fields are fixed, plausible measurements."""
    return CompressibilityProbe(
        sample_bytes=65536,
        vanilla_ratio=1.3,
        vanilla_mbps=2.0,
        primacy_ratio=1.5,
        primacy_mbps=5.0,
        alpha2=alpha2,
        alpha1=0.25,
        sigma_ho=0.3,
        sigma_lo=sigma_lo,
        preconditioner_mbps=300.0,
        compressor_mbps=3.0,
    )


class TestRecommendUsesMeasurements:
    """Bug 1: measured alpha2 / sigma_lo must reach the model."""

    def test_alpha2_flips_recommendation(self):
        # Same dataset measurements except the ISOBAR low-order compress
        # fraction.  Compressing 90 % of the low-order stream for zero
        # gain (sigma_lo=1.0) burns compute; on a fast network that
        # flips the verdict to WRITE RAW.  With the fractions hardcoded
        # to alpha2=0 both probes returned the same answer.
        skip_low = _probe(alpha2=0.0, sigma_lo=1.0)
        waste_low = _probe(alpha2=0.9, sigma_lo=1.0)
        assert skip_low.recommend(network_bps=16e6) is True
        assert waste_low.recommend(network_bps=16e6) is False

    def test_sigma_lo_flips_recommendation(self):
        # Identical probes except the measured low-order ratio: when the
        # compressed 90 % actually shrinks (sigma_lo=0.3) the same
        # pipeline is worth running.  The old code pinned sigma_lo=1.0.
        shrinks = _probe(alpha2=0.9, sigma_lo=0.3)
        doesnt = _probe(alpha2=0.9, sigma_lo=1.0)
        assert shrinks.recommend(network_bps=16e6) is True
        assert doesnt.recommend(network_bps=16e6) is False

    def test_slow_network_still_compresses(self):
        # Sanity: on a slow link even the wasteful pipeline wins.
        assert _probe(alpha2=0.9, sigma_lo=1.0).recommend(network_bps=1e6)


class TestMeasuredStageRates:
    """Bug 2: stage rates are measured, not ``primacy_mbps`` times 4."""

    def test_probe_reports_separate_stage_rates(self):
        rng = np.random.default_rng(11)
        data = np.cumsum(rng.normal(0, 1e-6, 32768)).astype("<f8").tobytes()
        probe = estimate_compressibility(data)
        assert probe.preconditioner_mbps > 0.0
        assert probe.compressor_mbps > 0.0
        # The pure-NumPy preconditioner is orders of magnitude faster
        # than the pure-Python entropy stage; a 4:1 magic constant could
        # never have reflected that.
        assert probe.preconditioner_mbps > probe.compressor_mbps
        # And the measured fractions are populated from the same run.
        assert 0.0 < probe.alpha1 <= 1.0
        assert 0.0 <= probe.alpha2 <= 1.0
        assert probe.sigma_ho > 0.0
        assert probe.sigma_lo > 0.0


class TestStridedSample:
    """Bug 3: the sample must fill its budget from disjoint pieces."""

    def test_budget_filled_exactly(self):
        # 10 KB stream, 1000-byte budget: the old per-piece rounding
        # returned 896 bytes (10.4 % under budget).
        data = bytes(range(256)) * 40  # 10240 bytes
        sample = _strided_sample(data, 1000)
        assert len(sample) == 1000

    def test_small_budget_prefix_is_word_aligned(self):
        data = bytes(1024)
        sample = _strided_sample(data, 120)
        assert len(sample) == 120
        assert len(sample) % 8 == 0

    def test_pieces_are_disjoint_and_ordered(self):
        # Unique strictly-increasing words: any overlap or repeated
        # piece would show up as a duplicated or out-of-order word.
        words = np.arange(4096, dtype="<u8")
        data = words.tobytes()
        sample = _strided_sample(data, 4096)
        got = np.frombuffer(sample, dtype="<u8")
        assert len(got) == 4096 // 8
        assert np.all(np.diff(got.astype(np.int64)) > 0)

    @settings(max_examples=60, deadline=None)
    @given(
        n_words=st.integers(min_value=0, max_value=3000),
        extra=st.integers(min_value=0, max_value=7),
        budget=st.integers(min_value=0, max_value=4096),
    )
    def test_sample_properties(self, n_words: int, extra: int, budget: int):
        words = np.arange(n_words, dtype="<u8")
        data = words.tobytes() + bytes(extra)
        sample = _strided_sample(data, budget)
        # Never longer than the input, never longer than the budget
        # (except the degenerate whole-stream case).
        assert len(sample) <= len(data)
        if len(data) > budget:
            assert len(sample) <= budget
        # No duplicated pieces: every whole word in the sample is unique
        # and in stream order.
        usable = len(sample) - (len(sample) % 8)
        got = np.frombuffer(sample[:usable], dtype="<u8")
        got_in_range = got[got < n_words]
        if len(data) > budget:
            # A strided or prefix sample is built only of whole words.
            assert len(got_in_range) == len(got)
        assert np.all(np.diff(got_in_range.astype(np.int64)) > 0)
