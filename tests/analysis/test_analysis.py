"""Tests for the analysis package (Figures 1/3 and side studies)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    bit_probability_profile,
    byte_sequence_frequencies,
    chunk_frequency_correlations,
    permute_values,
    repeatability_gain,
)
from repro.datasets import FIGURE1_DATASETS, generate, generate_bytes


class TestBitProbability:
    @pytest.mark.parametrize("name", FIGURE1_DATASETS)
    def test_figure1_shape(self, name):
        """Exponent bits regular, leading mantissa bits near coin-flip.

        Quantized datasets (num_plasma) have a *regular tail* too, so the
        coin-flip zone is the leading mantissa (bits 16-32), not the whole
        mantissa.
        """
        vals = generate(name, 16384, seed=5)
        prof = bit_probability_profile(vals, name=name)
        assert prof.exponent_mean > 0.7
        leading_mantissa = float(prof.probabilities[16:32].mean())
        assert leading_mantissa < 0.65
        assert prof.exponent_mean > leading_mantissa

    def test_accepts_raw_bytes(self, obs_temp_small):
        prof = bit_probability_profile(obs_temp_small)
        assert prof.probabilities.shape == (64,)

    def test_probabilities_at_least_half(self, obs_temp_small):
        prof = bit_probability_profile(obs_temp_small)
        assert np.all(prof.probabilities >= 0.5)
        assert np.all(prof.probabilities <= 1.0)


class TestByteFrequencies:
    def test_figure3_contrast(self, num_plasma_small):
        exp, man = byte_sequence_frequencies(num_plasma_small)
        # Fig 3a: few unique exponent pairs; Fig 3b: many mantissa pairs.
        assert exp.n_unique < 2000
        assert man.n_unique > 10 * exp.n_unique
        assert exp.top_fraction > man.top_fraction

    def test_frequencies_normalized(self, obs_temp_small):
        exp, man = byte_sequence_frequencies(obs_temp_small)
        assert exp.frequencies.sum() == pytest.approx(1.0)
        assert man.frequencies.sum() == pytest.approx(1.0)

    def test_top_k_mass_monotone(self, obs_temp_small):
        exp, _ = byte_sequence_frequencies(obs_temp_small)
        assert exp.top_k_mass(10) <= exp.top_k_mass(100) <= 1.0 + 1e-9


class TestRepeatability:
    def test_mapping_increases_repeatability(self, obs_temp_small):
        rep = repeatability_gain(obs_temp_small)
        assert rep.top_byte_gain >= 0
        assert rep.entropy_reduction >= -1e-9

    def test_gain_magnitude_across_datasets(self):
        """Sec II-C: noticeable average repeatability gain (paper ~15 %)."""
        gains = []
        for name in ["gts_chkp_zeon", "obs_temp", "msg_lu", "num_control"]:
            data = generate_bytes(name, 8192, seed=2)
            gains.append(repeatability_gain(data, name=name).top_byte_gain)
        assert np.mean(gains) > 0.02


class TestPermute:
    def test_preserves_value_multiset(self, obs_temp_small):
        permuted = permute_values(obs_temp_small, seed=3)
        orig = np.sort(np.frombuffer(obs_temp_small, dtype=np.uint64))
        perm = np.sort(np.frombuffer(permuted, dtype=np.uint64))
        assert np.array_equal(orig, perm)

    def test_changes_order(self, obs_temp_small):
        assert permute_values(obs_temp_small, seed=3) != obs_temp_small

    def test_deterministic(self, obs_temp_small):
        assert permute_values(obs_temp_small, seed=3) == permute_values(
            obs_temp_small, seed=3
        )

    def test_tail_kept_in_place(self):
        data = np.arange(4, dtype="<f8").tobytes() + b"zz"
        permuted = permute_values(data, seed=0)
        assert permuted[-2:] == b"zz"
        assert len(permuted) == len(data)


class TestIndexCorrelation:
    def test_stationary_data_correlates(self):
        data = generate_bytes("obs_temp", 32768, seed=4)
        study = chunk_frequency_correlations(data, chunk_bytes=32 * 1024)
        assert study.mean > 0.8
        assert study.reuse_fraction(0.5) == 1.0

    def test_regime_change_breaks_correlation(self):
        a = generate_bytes("obs_temp", 8192, seed=4)
        b = generate_bytes("gts_phi_l", 8192, seed=4)
        study = chunk_frequency_correlations(a + b, chunk_bytes=8192 * 8)
        assert study.minimum < 0.6

    def test_single_chunk_defaults(self):
        data = generate_bytes("obs_temp", 1024, seed=4)
        study = chunk_frequency_correlations(data, chunk_bytes=1 << 20)
        assert study.correlations.size == 0
        assert study.mean == 1.0
        assert study.reuse_fraction(0.9) == 1.0


class TestReport:
    def test_dataset_report_contents(self):
        from repro.analysis import dataset_report

        text = dataset_report("obs_temp", n_values=2048, seed=1)
        assert "# Dataset report: `obs_temp`" in text
        assert "Codec comparison" in text
        assert "| primacy |" in text
        assert "repeatability gain" in text.lower() or "ID-mapping" in text

    def test_report_unknown_dataset(self):
        from repro.analysis import dataset_report

        with pytest.raises(KeyError):
            dataset_report("not-a-dataset")

    def test_codec_comparison_rows(self, obs_temp_small):
        from repro.analysis import codec_comparison_rows

        rows = codec_comparison_rows(obs_temp_small)
        names = [r[0] for r in rows]
        assert names[-1] == "primacy"
        assert all(cr > 0 for _, cr, _, _ in rows)


class TestCompressibilityProbe:
    def test_probe_fields(self, obs_temp_small):
        from repro.analysis import estimate_compressibility

        probe = estimate_compressibility(obs_temp_small, sample_bytes=16384)
        assert probe.sample_bytes <= 16384 + 64
        assert probe.vanilla_ratio > 0.9
        assert probe.primacy_ratio > probe.vanilla_ratio * 0.9
        assert 0.0 <= probe.alpha2 <= 1.0

    def test_hard_classification(self):
        hard = generate_bytes("gts_chkp_zeon", 4096, seed=1)
        easy = generate_bytes("msg_sppm", 4096, seed=1)
        from repro.analysis import estimate_compressibility

        assert estimate_compressibility(hard).hard_to_compress
        assert not estimate_compressibility(easy).hard_to_compress

    def test_recommendation_flips_with_network_speed(self, obs_temp_small):
        from repro.analysis import estimate_compressibility

        probe = estimate_compressibility(obs_temp_small, sample_bytes=16384)
        # A network far slower than the compressor: compress.
        slow = probe.recommend(network_bps=probe.primacy_mbps * 1e6 / 50)
        # A network far faster than the compressor: do not.
        fast = probe.recommend(network_bps=probe.primacy_mbps * 1e6 * 50)
        assert slow is True
        assert fast is False

    def test_empty_rejected(self):
        from repro.analysis import estimate_compressibility

        with pytest.raises(ValueError):
            estimate_compressibility(b"")

    def test_sample_is_representative(self):
        """A strided sample must see a regime change mid-stream."""
        from repro.analysis import estimate_compressibility

        a = generate_bytes("msg_sppm", 8192, seed=0)
        b = generate_bytes("gts_chkp_zeon", 8192, seed=0)
        probe_mixed = estimate_compressibility(a + b, sample_bytes=16384)
        probe_easy = estimate_compressibility(a, sample_bytes=16384)
        assert probe_mixed.vanilla_ratio < probe_easy.vanilla_ratio
