"""Tests for pipelined (double-buffered) staging writes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compressors import get_codec
from repro.iosim import (
    CodecStrategy,
    NullStrategy,
    StagingEnvironment,
    StagingSimulator,
    simulate_write_pipelined,
)

_ENV = StagingEnvironment(
    rho=4,
    network_write_bps=5e6,
    network_read_bps=20e6,
    disk_write_bps=5e6,
    disk_read_bps=40e6,
)


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(6)
    vals = np.cumsum(rng.normal(0, 0.01, 32768)) + 3
    m, e = np.frexp(vals)
    return np.ldexp(np.round(m * 2**18) / 2**18, e).astype("<f8").tobytes()


class TestPipelinedWrite:
    def test_null_strategy_is_pure_io(self, dataset):
        sim = StagingSimulator(_ENV)
        run = simulate_write_pipelined(sim, dataset, NullStrategy(), 4)
        assert run.bottleneck == "io"
        assert run.compute_hidden

    def test_makespan_formula(self, dataset):
        sim = StagingSimulator(_ENV)
        run = simulate_write_pipelined(
            sim, dataset, CodecStrategy(get_codec("pylzo")), 3
        )
        r = run.step_result
        steady = max(r.t_compute, r.t_transfer + r.t_disk)
        expected = r.t_compute + 2 * steady + (r.t_transfer + r.t_disk)
        assert run.makespan == pytest.approx(expected)

    def test_pipelining_never_slower_than_bsp(self, dataset):
        sim = StagingSimulator(_ENV)
        strat = CodecStrategy(get_codec("pylzo"))
        n = 5
        run = simulate_write_pipelined(sim, dataset, strat, n)
        bsp_result = sim.simulate_write(dataset, strat)
        bsp_makespan = n * bsp_result.t_total
        assert run.makespan <= bsp_makespan * 1.05

    def test_compression_gain_amplified_by_overlap(self, dataset):
        """With compute hidden, the payload reduction is pure profit."""
        sim = StagingSimulator(_ENV)
        n = 8
        null_run = simulate_write_pipelined(sim, dataset, NullStrategy(), n)
        lzo_run = simulate_write_pipelined(
            sim, dataset, CodecStrategy(get_codec("pylzo")), n
        )
        if lzo_run.compute_hidden:
            # Speedup approaches 1/compressed_fraction at steady state.
            speedup = lzo_run.throughput_bps / null_run.throughput_bps
            inv_fraction = 1.0 / lzo_run.step_result.compressed_fraction
            assert speedup == pytest.approx(inv_fraction, rel=0.2)

    def test_single_step_equals_bsp(self, dataset):
        sim = StagingSimulator(_ENV)
        strat = CodecStrategy(get_codec("pylzo"))
        run = simulate_write_pipelined(sim, dataset, strat, 1)
        assert run.makespan == pytest.approx(run.step_result.t_total)

    def test_step_count_validation(self, dataset):
        sim = StagingSimulator(_ENV)
        with pytest.raises(ValueError):
            simulate_write_pipelined(sim, dataset, NullStrategy(), 0)
