"""Tests for the multi-group staging cluster."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compressors import get_codec
from repro.iosim import (
    CodecStrategy,
    NullStrategy,
    StagingCluster,
    StagingEnvironment,
)

_ENV = StagingEnvironment(
    rho=4,
    network_write_bps=20e6,
    network_read_bps=50e6,
    disk_write_bps=20e6,
    disk_read_bps=80e6,
)


@pytest.fixture(scope="module")
def dataset() -> bytes:
    rng = np.random.default_rng(3)
    vals = np.cumsum(rng.normal(0, 0.01, 65536)) + 10.0
    # Reduced precision so even the weak lzo analogue finds matches.
    m, e = np.frexp(vals)
    vals = np.ldexp(np.round(m * 2**16) / 2**16, e)
    return vals.astype("<f8").tobytes()


class TestStagingCluster:
    def test_shards_cover_dataset(self, dataset):
        cluster = StagingCluster(_ENV, 4)
        shards = cluster._shards(dataset)
        assert len(shards) == 4
        assert b"".join(shards) == dataset

    def test_null_write_throughput_scales_with_groups(self, dataset):
        """Independent groups: aggregate throughput ~ linear in groups."""
        tau1 = StagingCluster(_ENV, 1).simulate_write(
            dataset, NullStrategy
        ).throughput_bps
        tau4 = StagingCluster(_ENV, 4).simulate_write(
            dataset, NullStrategy
        ).throughput_bps
        assert tau4 == pytest.approx(4 * tau1, rel=0.05)

    def test_makespan_is_max_group(self, dataset):
        result = StagingCluster(_ENV, 3).simulate_write(dataset, NullStrategy)
        assert result.makespan == max(r.t_total for r in result.group_results)

    def test_no_jitter_no_stragglers(self, dataset):
        result = StagingCluster(_ENV, 4).simulate_write(dataset, NullStrategy)
        assert result.straggler_penalty == pytest.approx(1.0, rel=0.01)

    def test_jitter_creates_stragglers(self, dataset):
        env = StagingEnvironment(
            rho=4,
            network_write_bps=20e6,
            network_read_bps=50e6,
            disk_write_bps=20e6,
            disk_read_bps=80e6,
            jitter=0.5,
            seed=7,
        )
        cluster = StagingCluster(env, 8)
        result = cluster.simulate_write(
            dataset, lambda: CodecStrategy(get_codec("pylzo"))
        )
        assert result.straggler_penalty > 1.0

    def test_read_direction(self, dataset):
        result = StagingCluster(_ENV, 2).simulate_read(dataset, NullStrategy)
        assert result.direction == "read"
        assert result.original_bytes == len(dataset)

    def test_group_count_validation(self):
        with pytest.raises(ValueError):
            StagingCluster(_ENV, 0)

    def test_too_small_dataset(self):
        cluster = StagingCluster(_ENV, 4)
        with pytest.raises(ValueError):
            cluster.simulate_write(b"12345678" * 4, NullStrategy)

    def test_compression_reduces_payload_cluster_wide(self, dataset):
        cluster = StagingCluster(_ENV, 2)
        null = cluster.simulate_write(dataset, NullStrategy)
        lzo = cluster.simulate_write(
            dataset, lambda: CodecStrategy(get_codec("pylzo"))
        )
        assert lzo.payload_bytes < null.payload_bytes
