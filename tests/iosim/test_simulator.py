"""Tests for strategies and the bulk-synchronous simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compressors import get_codec
from repro.core import PrimacyConfig
from repro.iosim import (
    CodecStrategy,
    NullStrategy,
    PrimacyStrategy,
    SimResult,
    StagingEnvironment,
    StagingSimulator,
)
from repro.model import calibrate_from_stats, predict_compressed_write

_ENV = StagingEnvironment(
    rho=4,
    network_write_bps=10e6,
    network_read_bps=50e6,
    disk_write_bps=10e6,
    disk_read_bps=80e6,
)


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(12)
    vals = np.cumsum(rng.normal(0, 0.01, 32768)) + 100.0
    # Quantize to 20 significant bits so even the weak lzo analogue finds
    # matches (checkpoint data is often stored at reduced precision).
    m, e = np.frexp(vals)
    vals = np.ldexp(np.round(m * 2**20) / 2**20, e)
    return vals.astype("<f8").tobytes()


class TestStrategies:
    def test_null_strategy(self, dataset):
        work = NullStrategy().process_chunk(dataset)
        assert work.payload == dataset
        assert work.compress_seconds == 0.0
        assert work.compressed_fraction == 1.0

    def test_codec_strategy_measures_and_verifies(self, dataset):
        work = CodecStrategy(get_codec("pylzo")).process_chunk(dataset)
        assert work.compress_seconds > 0
        assert work.decompress_seconds > 0
        assert work.payload_bytes < len(dataset)

    def test_primacy_strategy_collects_stats(self, dataset):
        strat = PrimacyStrategy(PrimacyConfig(chunk_bytes=32 * 1024))
        work = strat.process_chunk(dataset)
        assert strat.last_stats is not None
        assert work.payload_bytes == strat.last_stats.container_bytes


class TestSimulatorTiming:
    def test_null_write_matches_model_formula(self, dataset):
        sim = StagingSimulator(_ENV)
        result = sim.simulate_write(dataset, NullStrategy())
        n = len(dataset)
        # Eqn 4 aggregate: (1 + rho) * (N / rho) / theta.
        assert result.t_transfer == pytest.approx(
            (1 + 4) * (n / 4) / 10e6
        )
        assert result.t_disk == pytest.approx(n / 10e6)
        assert result.t_compute == 0.0

    def test_null_read_uses_read_path(self, dataset):
        sim = StagingSimulator(_ENV)
        result = sim.simulate_read(dataset, NullStrategy())
        n = len(dataset)
        assert result.t_disk == pytest.approx(n / 80e6)
        assert result.t_transfer == pytest.approx((1 + 4) * (n / 4) / 50e6)

    def test_throughput_counts_original_bytes(self, dataset):
        sim = StagingSimulator(_ENV)
        result = sim.simulate_write(dataset, CodecStrategy(get_codec("pylzo")))
        assert result.original_bytes == len(dataset) - len(dataset) % (4 * 8)
        assert result.throughput_bps == pytest.approx(
            result.original_bytes / result.t_total
        )

    def test_compression_shrinks_transfer_and_disk(self, dataset):
        sim = StagingSimulator(_ENV)
        null = sim.simulate_write(dataset, NullStrategy())
        lzo = sim.simulate_write(dataset, CodecStrategy(get_codec("pylzo")))
        assert lzo.t_transfer < null.t_transfer
        assert lzo.t_disk < null.t_disk
        assert lzo.t_compute > 0

    def test_node_chunks_cover_dataset(self, dataset):
        sim = StagingSimulator(_ENV)
        chunks = sim._node_chunks(dataset)
        assert len(chunks) == 4
        assert b"".join(chunks) == dataset

    def test_too_small_dataset_rejected(self):
        sim = StagingSimulator(_ENV)
        with pytest.raises(ValueError):
            sim.simulate_write(b"1234", NullStrategy())

    def test_jitter_is_deterministic_by_seed(self, dataset):
        env = StagingEnvironment(
            rho=4,
            network_write_bps=10e6,
            network_read_bps=50e6,
            disk_write_bps=10e6,
            disk_read_bps=80e6,
            jitter=0.2,
            seed=42,
        )
        r1 = StagingSimulator(env).simulate_write(
            dataset, CodecStrategy(get_codec("null"))
        )
        r2 = StagingSimulator(env).simulate_write(
            dataset, CodecStrategy(get_codec("null"))
        )
        # Payloads identical; only jitter applies, and it is seeded.
        assert r1.t_transfer == r2.t_transfer


class TestModelAgreement:
    def test_simulated_vs_analytical_primacy_write(self, dataset):
        """Fig 4's punchline: theory tracks the (simulated) empirical value."""
        sim = StagingSimulator(_ENV)
        strat = PrimacyStrategy(PrimacyConfig(chunk_bytes=64 * 1024))
        strat.process_chunk(dataset[: 32 * 1024])  # warm caches/allocator
        result = sim.simulate_write(dataset, strat)
        stats = strat.last_stats
        per_node = result.original_bytes / _ENV.rho
        inputs = calibrate_from_stats(
            stats,
            chunk_bytes=per_node,
            rho=_ENV.rho,
            network_bps=_ENV.network_write_bps,
            disk_write_bps=_ENV.disk_write_bps,
        )
        predicted = predict_compressed_write(inputs)
        # The machine-determined stages must agree closely (both sides use
        # the same formulas over slightly different payload measurements).
        assert predicted.t_transfer == pytest.approx(result.t_transfer, rel=0.15)
        assert predicted.t_write == pytest.approx(result.t_disk, rel=0.15)
        # End-to-end throughput includes measured CPU time, which is noisy
        # on a shared host: same order of magnitude, tracking trend.
        assert predicted.throughput_bps(inputs) == pytest.approx(
            result.throughput_bps, rel=0.6
        )


class TestSimResult:
    def test_compressed_fraction(self):
        r = SimResult(
            direction="write",
            strategy="x",
            rho=2,
            original_bytes=100,
            payload_bytes=40,
            t_compute=0.0,
            t_transfer=1.0,
            t_disk=1.0,
        )
        assert r.compressed_fraction == pytest.approx(0.4)
        assert r.t_total == 2.0
