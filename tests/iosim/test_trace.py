"""Tests for the I/O timeline tracer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compressors import get_codec
from repro.iosim import (
    CodecStrategy,
    NullStrategy,
    Span,
    StagingEnvironment,
    StagingSimulator,
    Timeline,
    timeline_from_result,
)

_ENV = StagingEnvironment(
    rho=3,
    network_write_bps=10e6,
    network_read_bps=40e6,
    disk_write_bps=10e6,
    disk_read_bps=60e6,
)


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(4)
    vals = np.cumsum(rng.normal(0, 0.01, 16384)) + 5
    m, e = np.frexp(vals)
    return np.ldexp(np.round(m * 2**18) / 2**18, e).astype("<f8").tobytes()


class TestSpanTimeline:
    def test_span_validation(self):
        with pytest.raises(ValueError):
            Span(lane="a", label="x", start=2.0, end=1.0)

    def test_makespan(self):
        tl = Timeline()
        tl.add("a", "x", 0.0, 1.0)
        tl.add("b", "y", 0.5, 3.0)
        assert tl.makespan == 3.0
        assert tl.lanes() == ["a", "b"]

    def test_empty_render(self):
        assert "empty" in Timeline().render()

    def test_render_shape(self):
        tl = Timeline()
        tl.add("node0", "compress", 0.0, 1.0)
        tl.add("disk", "write", 1.0, 2.0)
        text = tl.render(width=40)
        lines = text.splitlines()
        assert len(lines) == 3  # two lanes + axis
        assert "#" in lines[0] and "#" in lines[1]


class TestTimelineFromResult:
    def test_write_stage_order(self, dataset):
        sim = StagingSimulator(_ENV)
        result = sim.simulate_write(
            dataset, CodecStrategy(get_codec("pylzo"))
        )
        tl = timeline_from_result(result)
        lanes = tl.lanes()
        assert any(l.startswith("node") for l in lanes)
        assert "network" in lanes and "disk" in lanes
        net = next(s for s in tl.spans if s.lane == "network")
        disk = next(s for s in tl.spans if s.lane == "disk")
        # BSP ordering: transfer starts at the compute barrier, disk after.
        assert net.start == pytest.approx(result.t_compute)
        assert disk.start == pytest.approx(net.end)
        assert tl.makespan == pytest.approx(result.t_total)

    def test_read_stage_order(self, dataset):
        sim = StagingSimulator(_ENV)
        result = sim.simulate_read(dataset, CodecStrategy(get_codec("pylzo")))
        tl = timeline_from_result(result)
        disk = next(s for s in tl.spans if s.lane == "disk")
        net = next(s for s in tl.spans if s.lane == "network")
        assert disk.start == 0.0
        assert net.start == pytest.approx(disk.end)
        assert tl.makespan == pytest.approx(result.t_total)

    def test_null_strategy_has_no_compute_lanes(self, dataset):
        sim = StagingSimulator(_ENV)
        result = sim.simulate_write(dataset, NullStrategy())
        tl = timeline_from_result(result)
        assert all(not l.startswith("node") for l in tl.lanes())
