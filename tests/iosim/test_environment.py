"""Tests for the staging environment description."""

from __future__ import annotations

import pytest

from repro.compressors import get_codec
from repro.iosim import (
    StagingEnvironment,
    jaguar_like_environment,
    measure_reference_throughput,
)


class TestStagingEnvironment:
    def test_defaults_match_jaguar(self):
        env = StagingEnvironment()
        assert env.rho == 8
        assert env.network_write_bps == pytest.approx(34e6)

    def test_validation(self):
        with pytest.raises(ValueError):
            StagingEnvironment(rho=0)
        with pytest.raises(ValueError):
            StagingEnvironment(network_write_bps=-1)
        with pytest.raises(ValueError):
            StagingEnvironment(jitter=-0.5)

    def test_null_write_baseline_matches_fig4(self):
        """tau_null = rho / ((1+rho)/theta + rho/mu) ~ 16 MB/s at scale 1."""
        env = StagingEnvironment()
        tau = env.rho / (
            (1 + env.rho) / env.network_write_bps + env.rho / env.disk_write_bps
        )
        assert 14e6 < tau < 18e6

    def test_null_read_baseline_matches_fig4(self):
        env = StagingEnvironment()
        tau = env.rho / (
            (1 + env.rho) / env.network_read_bps + env.rho / env.disk_read_bps
        )
        assert 100e6 < tau < 150e6


class TestScaling:
    def test_scale_multiplies_rates(self):
        base = jaguar_like_environment(1.0)
        half = jaguar_like_environment(0.5)
        assert half.network_write_bps == pytest.approx(base.network_write_bps / 2)
        assert half.disk_read_bps == pytest.approx(base.disk_read_bps / 2)

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            jaguar_like_environment(0.0)

    def test_measure_reference_throughput(self, smooth_doubles):
        bps = measure_reference_throughput(get_codec("pylzo"), smooth_doubles)
        assert bps > 0

    def test_measure_rejects_empty(self):
        with pytest.raises(ValueError):
            measure_reference_throughput(get_codec("null"), b"")
