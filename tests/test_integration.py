"""Cross-subsystem integration tests: full workflows end to end."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.checkpoint import CheckpointReader, CheckpointWriter
from repro.compressors import evaluate_codec, get_codec
from repro.core import (
    IndexReusePolicy,
    PrimacyCodec,
    PrimacyCompressor,
    PrimacyConfig,
)
from repro.datasets import FIGURE4_DATASETS, generate, generate_bytes
from repro.iosim import (
    CodecStrategy,
    NullStrategy,
    PrimacyStrategy,
    StagingEnvironment,
    StagingSimulator,
)
from repro.model import (
    calibrate_from_stats,
    fit_machine,
    predict_base_write,
    predict_compressed_write,
)
from repro.parallel import ParallelCompressor
from repro.storage import PrimacyFileReader, PrimacyFileWriter


class TestFullCompressionMatrix:
    """PRIMACY x backends x datasets, all lossless."""

    @pytest.mark.parametrize("dataset", FIGURE4_DATASETS)
    @pytest.mark.parametrize("backend", ["pyzlib", "pylzo", "huffman"])
    def test_roundtrip(self, dataset, backend):
        data = generate_bytes(dataset, 4096, seed=21)
        codec = PrimacyCodec(
            PrimacyConfig(codec=backend, chunk_bytes=16 * 1024)
        )
        assert codec.decompress(codec.compress(data)) == data


class TestSimulationToModelLoop:
    """Simulate -> fit machine -> predict -> compare (the Sec-III loop)."""

    def test_fitted_model_predicts_compressed_write(self):
        env = StagingEnvironment(
            rho=8,
            network_write_bps=8e6,
            network_read_bps=30e6,
            disk_write_bps=15e6,
            disk_read_bps=50e6,
        )
        sim = StagingSimulator(env)
        data = generate_bytes("num_plasma", 32768, seed=5)

        # Step 1: observe null steps, fit the machine.
        observations = [
            sim.simulate_write(data[: n * 8], NullStrategy())
            for n in (8192, 16384, 32768)
        ]
        fit = fit_machine(observations)
        assert fit.network_bps == pytest.approx(env.network_write_bps, rel=0.01)

        # Step 2: one PRIMACY run calibrates the compression parameters.
        strat = PrimacyStrategy(PrimacyConfig(chunk_bytes=32 * 1024))
        result = sim.simulate_write(data, strat)
        inputs = calibrate_from_stats(
            strat.last_stats,
            chunk_bytes=result.original_bytes / env.rho,
            rho=env.rho,
            network_bps=fit.network_bps,
            disk_write_bps=fit.disk_bps,
        )

        # Step 3: the model must rank strategies like the simulator does.
        pred_null = predict_base_write(inputs).throughput_bps(inputs)
        pred_primacy = predict_compressed_write(inputs).throughput_bps(inputs)
        sim_null = observations[-1].throughput_bps
        sim_primacy = result.throughput_bps
        assert (pred_primacy > pred_null) == (sim_primacy > sim_null)


class TestParallelToStorage:
    """Parallel compression output flows into storage and back."""

    def test_parallel_container_equals_file_content(self):
        data = generate_bytes("obs_error", 16384, seed=9)
        cfg = PrimacyConfig(chunk_bytes=16 * 1024)
        container, _ = ParallelCompressor(cfg, workers=2).compress(data)
        assert PrimacyCompressor(cfg).decompress(container) == data

    def test_prif_after_parallel_stats_consistent(self):
        data = generate_bytes("obs_error", 16384, seed=9)
        cfg = PrimacyConfig(chunk_bytes=16 * 1024)
        _, par_stats = ParallelCompressor(cfg, workers=2).compress(data)
        buf = io.BytesIO()
        with PrimacyFileWriter(buf, cfg) as writer:
            writer.write(data)
        assert writer.stats.alpha2 == pytest.approx(par_stats.alpha2)
        assert writer.stats.sigma_ho == pytest.approx(par_stats.sigma_ho)


class TestCheckpointRestartCycle:
    """Multi-step simulation state survives a full checkpoint cycle."""

    def test_three_step_simulation(self):
        rng = np.random.default_rng(2)
        state = rng.normal(100, 1, (32, 32))
        buf = io.BytesIO()
        history = []
        with CheckpointWriter(buf, PrimacyConfig(chunk_bytes=8 * 1024)) as ckpt:
            for step in range(3):
                state = state + 0.1 * rng.standard_normal(state.shape)
                history.append(state.copy())
                ckpt.write_step(step, {"state": state})

        reader = CheckpointReader(io.BytesIO(buf.getvalue()))
        # Restart from the middle step and replay: must equal the original.
        replay = reader.read(1, "state")
        assert np.array_equal(replay, history[1])
        final = reader.read(2, "state")
        assert np.array_equal(final, history[2])


class TestIndexReuseAcrossSubsystems:
    """Reuse-chain containers survive storage random access AND the
    vanilla in-memory decompressor."""

    def test_correlated_policy_everywhere(self):
        data = generate_bytes("obs_temp", 24000, seed=13)
        cfg = PrimacyConfig(
            chunk_bytes=8 * 1024, index_policy=IndexReusePolicy.CORRELATED
        )
        container, _ = PrimacyCompressor(cfg).compress(data)
        assert PrimacyCompressor().decompress(container) == data

        buf = io.BytesIO()
        with PrimacyFileWriter(buf, cfg) as writer:
            writer.write(data)
        reader = PrimacyFileReader(io.BytesIO(buf.getvalue()))
        # Straight into the last chunk.
        last_n = reader.chunk_entries()[-1].n_values
        start = reader.n_values - last_n
        assert reader.read_values(start, last_n) == data[start * 8 : (start + last_n) * 8]


class TestHeadlineNumbers:
    """The repository's reason to exist, in one test."""

    def test_primacy_improves_ratio_and_speed_on_hard_data(self):
        data = generate_bytes("gts_chkp_zion", 16384, seed=1)
        mz = evaluate_codec(get_codec("pyzlib"), data, repeats=2)
        mp = evaluate_codec(
            PrimacyCodec(PrimacyConfig(chunk_bytes=len(data))), data, repeats=2
        )
        assert mp.compression_ratio > mz.compression_ratio * 1.05
        assert mp.compression_mbps > mz.compression_mbps
        assert mp.decompression_mbps > mz.decompression_mbps
