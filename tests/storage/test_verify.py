"""Tests for fsck/salvage (repro.storage.verify) and their CLI commands."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.checkpoint import CheckpointWriter
from repro.cli import main
from repro.compressors import CodecError
from repro.core import PrimacyConfig
from repro.datasets import generate_bytes
from repro.storage import (
    PrimacyFileReader,
    PrimacyFileWriter,
    fsck,
    salvage_prif,
)

_CFG = PrimacyConfig(chunk_bytes=512, checksum=True)


@pytest.fixture(scope="module")
def prif_case():
    payload = generate_bytes("obs_temp", 2000, seed=11) + b"xy"
    buf = io.BytesIO()
    with PrimacyFileWriter(buf, _CFG) as w:
        w.write(payload)
    blob = buf.getvalue()
    reader = PrimacyFileReader(io.BytesIO(blob))
    assert reader.n_chunks >= 3
    return payload, blob, reader._header_len, reader.info.chunks


def _flip(blob: bytes, offset: int) -> bytes:
    out = bytearray(blob)
    out[offset] ^= 0xFF
    return bytes(out)


class TestFsckPrif:
    def test_clean_file(self, prif_case):
        _, blob, _, _ = prif_case
        report = fsck(io.BytesIO(blob))
        assert report.format == "PRIF"
        assert report.ok
        assert report.first_divergence is None
        assert report.n_chunks_ok == report.n_chunks
        assert "clean" in report.summary()

    def test_unknown_magic(self):
        report = fsck(io.BytesIO(b"WAT?" + bytes(32)))
        assert report.format == "unknown"
        assert not report.ok

    def test_payload_damage_localized(self, prif_case):
        _, blob, _, entries = prif_case
        entry = entries[1]
        report = fsck(io.BytesIO(_flip(blob, entry.offset + entry.length // 2)))
        assert not report.ok
        assert report.n_chunks_ok == len(entries) - 1
        assert any(f.region == "chunk[1]" for f in report.findings)

    def test_prefix_damage_found_even_though_reads_succeed(self, prif_case):
        """The reader seeks by table and ignores prefixes; fsck must not."""
        payload, blob, header_len, _ = prif_case
        damaged = _flip(blob, header_len)  # first record's length prefix
        assert PrimacyFileReader(io.BytesIO(damaged)).read_all() == payload
        report = fsck(io.BytesIO(damaged))
        assert not report.ok
        assert any(f.region == "prefix[0]" for f in report.findings)

    def test_metadata_damage_reported(self, prif_case):
        _, blob, _, _ = prif_case
        report = fsck(io.BytesIO(_flip(blob, len(blob) - 6)))  # trailer CRC
        assert not report.ok
        assert report.n_chunks == 0  # never got past metadata


class TestFsckPrck:
    @pytest.fixture(scope="class")
    def prck_blob(self):
        buf = io.BytesIO()
        with CheckpointWriter(buf, PrimacyConfig(chunk_bytes=256)) as w:
            w.write_step(0, {"t": np.linspace(0, 1, 64, dtype=np.float64)})
            w.write_step(1, {"t": np.linspace(1, 2, 64, dtype=np.float64)})
        return buf.getvalue()

    def test_clean_checkpoint(self, prck_blob):
        report = fsck(io.BytesIO(prck_blob))
        assert report.format == "PRCK"
        assert report.ok
        assert report.n_chunks == report.n_chunks_ok == 2

    def test_segment_damage_scoped_to_segment(self, prck_blob):
        from repro.checkpoint.manager import CheckpointReader

        entry = CheckpointReader(io.BytesIO(prck_blob))._entries[1]
        damaged = _flip(prck_blob, entry.offset + entry.length // 2)
        report = fsck(io.BytesIO(damaged))
        assert not report.ok
        assert report.n_chunks_ok == 1
        assert all(
            f.region.startswith("segment[1/t]") for f in report.findings
        )

    def test_manifest_damage_reported(self, prck_blob):
        report = fsck(io.BytesIO(_flip(prck_blob, len(prck_blob) - 6)))
        assert not report.ok
        assert report.n_chunks == 0


class TestSalvage:
    def test_footer_mode_skips_only_damaged_chunk(self, prif_case):
        payload, blob, _, entries = prif_case
        word = _CFG.word_bytes
        entry = entries[1]
        result = salvage_prif(
            io.BytesIO(_flip(blob, entry.offset + entry.length // 2))
        )
        assert result.mode == "footer"
        assert not result.complete
        assert result.n_recovered == len(entries) - 1
        assert not result.chunks[1].recovered
        # Recovered data is everything except chunk 1's value range.
        start = entries[0].n_values * word
        lost = entries[1].n_values * word
        expected = payload[:start] + payload[start + lost :]
        assert result.data + result.tail == expected

    def test_footer_mode_complete_on_clean_file(self, prif_case):
        payload, blob, _, _ = prif_case
        result = salvage_prif(io.BytesIO(blob))
        assert result.complete
        assert result.data + result.tail == payload

    def test_scan_mode_on_truncation(self, prif_case):
        payload, blob, _, entries = prif_case
        word = _CFG.word_bytes
        cut = entries[2].offset  # record 2's prefix survives, body doesn't
        result = salvage_prif(io.BytesIO(blob[:cut]))
        assert result.mode == "scan"
        n = entries[0].n_values + entries[1].n_values
        assert result.values_recovered == n
        assert result.data == payload[: n * word]

    def test_dest_receives_recovered_bytes(self, prif_case, tmp_path):
        payload, blob, _, _ = prif_case
        out = tmp_path / "recovered.bin"
        salvage_prif(io.BytesIO(blob), out)
        assert out.read_bytes() == payload

    def test_hopeless_file_raises_typed_error(self):
        with pytest.raises(CodecError):
            salvage_prif(io.BytesIO(b"PRIF"))


class TestCli:
    @pytest.fixture
    def pri_file(self, tmp_path):
        payload = generate_bytes("obs_temp", 2000, seed=3)
        path = tmp_path / "data.pri"
        with PrimacyFileWriter(path, _CFG) as w:
            w.write(payload)
        return payload, path

    def test_fsck_clean_exits_zero(self, pri_file, capsys):
        _, path = pri_file
        assert main(["fsck", str(path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_fsck_damaged_exits_two(self, pri_file, tmp_path, capsys):
        payload, path = pri_file
        entry = PrimacyFileReader(path).info.chunks[0]
        bad = tmp_path / "bad.pri"
        bad.write_bytes(_flip(path.read_bytes(), entry.offset + 2))
        assert main(["fsck", str(bad)]) == 2
        assert "chunk[0]" in capsys.readouterr().out

    def test_salvage_recovers_truncated_file(self, pri_file, tmp_path, capsys):
        payload, path = pri_file
        entries = PrimacyFileReader(path).info.chunks
        cut = tmp_path / "cut.pri"
        cut.write_bytes(path.read_bytes()[: entries[1].offset - 1])
        out = tmp_path / "out.bin"
        assert main(["salvage", str(cut), str(out)]) == 0
        assert "scan mode" in capsys.readouterr().out
        got = out.read_bytes()
        assert got == payload[: len(got)]
        assert len(got) > 0

    def test_salvage_hopeless_exits_nonzero(self, tmp_path):
        junk = tmp_path / "junk.pri"
        junk.write_bytes(b"PRIF\x00")
        assert main(["salvage", str(junk), str(tmp_path / "o")]) == 1
