"""Tests for sharded PRIF archives (repro.storage.catalog)."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.compressors import CodecError, CorruptionError, TruncationError
from repro.core import IndexReusePolicy, PrimacyConfig
from repro.datasets import generate_bytes
from repro.storage import (
    PrimacyFileReader,
    PrimacyFileWriter,
    ShardedArchiveReader,
    ShardedArchiveWriter,
    compact_archive,
    fsck_archive,
    read_catalog,
    salvage_archive,
)
from repro.storage.catalog import (
    CATALOG_NAME,
    ArchiveManifest,
    CatalogEntry,
    ShardInfo,
    decode_catalog,
    encode_catalog,
    shard_name,
)

CHUNK_BYTES = 8192


@pytest.fixture(scope="module")
def payload() -> bytes:
    # 64 full chunks of float64 plus a sub-word tail.
    return generate_bytes("obs_temp", 65536, seed=11) + b"wxy"


@pytest.fixture()
def config() -> PrimacyConfig:
    return PrimacyConfig(chunk_bytes=CHUNK_BYTES)


def _pack(directory, payload, config, *, shards=4, step=10000, **kwargs):
    with ShardedArchiveWriter(
        directory, config, shards=shards, workers=1, **kwargs
    ) as writer:
        for off in range(0, len(payload), step):
            writer.write(payload[off : off + step])
    return writer


class TestRoundTrip:
    @pytest.mark.parametrize("shards", [1, 3, 4, 8])
    def test_read_all_identity(self, tmp_path, payload, config, shards):
        _pack(tmp_path / "arc", payload, config, shards=shards)
        with ShardedArchiveReader(tmp_path / "arc") as reader:
            assert reader.n_chunks == 64
            assert reader.read_all() == payload

    def test_matches_monolithic_bytes(self, tmp_path, payload, config):
        """Sharded decode and monolithic decode agree byte for byte."""
        _pack(tmp_path / "arc", payload, config)
        with PrimacyFileWriter(tmp_path / "mono.prif", config) as writer:
            writer.write(payload)
        with ShardedArchiveReader(tmp_path / "arc") as reader:
            sharded = reader.read_all()
        with PrimacyFileReader(tmp_path / "mono.prif") as reader:
            assert sharded == reader.read_all()

    def test_read_chunk_and_range(self, tmp_path, payload, config):
        _pack(tmp_path / "arc", payload, config)
        with ShardedArchiveReader(tmp_path / "arc") as reader:
            assert reader.read_chunk(0) == payload[:CHUNK_BYTES]
            assert (
                reader.read_chunk(63)
                == payload[63 * CHUNK_BYTES : 64 * CHUNK_BYTES]
            )
            assert (
                reader.read_range(5, 9)
                == payload[5 * CHUNK_BYTES : 9 * CHUNK_BYTES]
            )
            assert reader.read_range(7, 7) == b""
            assert reader.read_values(1000, 500) == payload[8000:12000]

    def test_bounds_errors(self, tmp_path, payload, config):
        _pack(tmp_path / "arc", payload, config)
        with ShardedArchiveReader(tmp_path / "arc") as reader:
            with pytest.raises(ValueError):
                reader.read_chunk(64)
            with pytest.raises(ValueError):
                reader.read_chunk(-1)
            with pytest.raises(ValueError):
                reader.read_range(0, 65)
            with pytest.raises(ValueError):
                reader.read_values(0, 10**9)

    def test_engine_pool_pack(self, tmp_path, payload, config):
        with ShardedArchiveWriter(
            tmp_path / "arc", config, shards=3, workers=2
        ) as writer:
            writer.write(payload)
        with ShardedArchiveReader(tmp_path / "arc") as reader:
            assert reader.read_all() == payload

    def test_planner_mode(self, tmp_path, payload):
        from repro.planner import PlannerConfig

        planner = PlannerConfig(base=PrimacyConfig(chunk_bytes=CHUNK_BYTES))
        with ShardedArchiveWriter(
            tmp_path / "arc", shards=2, workers=1, planner=planner
        ) as writer:
            writer.write(payload)
        assert len(writer.decisions) == 64
        with ShardedArchiveReader(tmp_path / "arc") as reader:
            assert reader.manifest.planned
            assert reader.read_all() == payload


class TestWriter:
    def test_requires_per_chunk_policy(self, tmp_path):
        config = PrimacyConfig(index_policy=IndexReusePolicy.FIRST_CHUNK)
        with pytest.raises(ValueError, match="PER_CHUNK"):
            ShardedArchiveWriter(tmp_path / "arc", config, shards=2)

    def test_refuses_sealed_directory(self, tmp_path, payload, config):
        _pack(tmp_path / "arc", payload, config)
        with pytest.raises(ValueError, match="sealed"):
            ShardedArchiveWriter(tmp_path / "arc", config)

    def test_abort_publishes_nothing(self, tmp_path, payload, config):
        with pytest.raises(RuntimeError):
            with ShardedArchiveWriter(
                tmp_path / "arc", config, shards=2, workers=1
            ) as writer:
                writer.write(payload[:20000])
                raise RuntimeError("boom")
        assert list((tmp_path / "arc").iterdir()) == []

    def test_round_robin_layout(self, tmp_path, payload, config):
        _pack(tmp_path / "arc", payload, config, shards=4)
        manifest = read_catalog(tmp_path / "arc")
        assert [e.shard for e in manifest.entries] == [
            i % 4 for i in range(64)
        ]
        assert all(s.n_chunks == 16 for s in manifest.shards)

    def test_chunk_entries_only_after_close(self, tmp_path, payload, config):
        writer = PrimacyFileWriter(tmp_path / "f.prif", config)
        writer.write(payload[:CHUNK_BYTES])
        with pytest.raises(ValueError, match="close"):
            writer.chunk_entries()
        writer.close()
        assert len(writer.chunk_entries()) == 1

    def test_stats_aggregate(self, tmp_path, payload, config):
        writer = _pack(tmp_path / "arc", payload, config)
        assert writer.stats.original_bytes == len(payload)
        assert len(writer.stats.chunks) == 64
        sizes = sum(
            (tmp_path / "arc" / shard_name(i)).stat().st_size
            for i in range(4)
        )
        catalog = (tmp_path / "arc" / CATALOG_NAME).stat().st_size
        assert writer.stats.container_bytes == sizes + catalog


class TestCatalogFormat:
    def test_encode_decode_symmetry(self, tmp_path, payload, config):
        _pack(tmp_path / "arc", payload, config)
        manifest = read_catalog(tmp_path / "arc")
        assert decode_catalog(encode_catalog(manifest)) == manifest

    def test_missing_catalog_is_unsealed(self, tmp_path, payload, config):
        _pack(tmp_path / "arc", payload, config)
        (tmp_path / "arc" / CATALOG_NAME).unlink()
        with pytest.raises(TruncationError, match="unsealed"):
            read_catalog(tmp_path / "arc")

    def test_flipped_byte_detected(self, tmp_path, payload, config):
        _pack(tmp_path / "arc", payload, config)
        path = tmp_path / "arc" / CATALOG_NAME
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x40
        path.write_bytes(bytes(blob))
        with pytest.raises(CorruptionError):
            read_catalog(tmp_path / "arc")

    def test_truncation_detected(self, tmp_path, payload, config):
        _pack(tmp_path / "arc", payload, config)
        path = tmp_path / "arc" / CATALOG_NAME
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(CodecError):
            read_catalog(tmp_path / "arc")

    def test_rejects_unsafe_shard_names(self, config):
        manifest = ArchiveManifest(
            config=config,
            shards=(ShardInfo(name="../evil.prif", file_bytes=64,
                              n_chunks=0),),
        )
        with pytest.raises(CorruptionError, match="unsafe"):
            decode_catalog(encode_catalog(manifest))

    def test_rejects_overlapping_extents(self, config):
        shards = (ShardInfo(name="s.prif", file_bytes=1000, n_chunks=2),)
        entries = (
            CatalogEntry(shard=0, offset=10, length=100, n_values=1024),
            CatalogEntry(shard=0, offset=50, length=100, n_values=1024),
        )
        manifest = ArchiveManifest(
            config=config, shards=shards, entries=entries,
            total_bytes=2048 * 8,
        )
        with pytest.raises(CorruptionError, match="overlaps"):
            decode_catalog(encode_catalog(manifest))

    def test_rejects_extent_past_shard_end(self, config):
        shards = (ShardInfo(name="s.prif", file_bytes=64, n_chunks=1),)
        entries = (
            CatalogEntry(shard=0, offset=10, length=100, n_values=1024),
        )
        manifest = ArchiveManifest(
            config=config, shards=shards, entries=entries,
            total_bytes=1024 * 8,
        )
        with pytest.raises(CorruptionError, match="past the end"):
            decode_catalog(encode_catalog(manifest))

    def test_rejects_value_total_mismatch(self, config):
        shards = (ShardInfo(name="s.prif", file_bytes=1000, n_chunks=1),)
        entries = (
            CatalogEntry(shard=0, offset=10, length=100, n_values=1024),
        )
        manifest = ArchiveManifest(
            config=config, shards=shards, entries=entries, total_bytes=1,
        )
        with pytest.raises(CorruptionError, match="total length"):
            decode_catalog(encode_catalog(manifest))


class TestReadLocality:
    """The acceptance check: one chunk read touches manifest + one record."""

    def setup_method(self):
        obs.disable()
        obs.reset()

    def teardown_method(self):
        obs.disable()
        obs.reset()

    @staticmethod
    def _counters():
        return {
            name: value
            for name, _labels, value in (
                obs.metrics.registry().snapshot()["counters"]
            )
        }

    def test_read_chunk_touches_one_shard(self, tmp_path, payload, config):
        _pack(tmp_path / "arc", payload, config, shards=4)
        archive_bytes = sum(
            p.stat().st_size for p in (tmp_path / "arc").iterdir()
        )
        obs.enable()
        try:
            with ShardedArchiveReader(tmp_path / "arc") as reader:
                entry = reader.manifest.entries[17]
                chunk = reader.read_chunk(17)
            counters = self._counters()
        finally:
            obs.disable()
        assert len(chunk) == CHUNK_BYTES
        assert counters["catalog.read.chunks"] == 1
        assert counters["catalog.shards.opened"] == 1
        # Bytes touched = exactly the one record the catalog points at;
        # everything else in the archive stayed cold.
        assert counters["catalog.read.bytes_touched"] == entry.length
        manifest_bytes = counters["catalog.read.manifest_bytes"]
        assert manifest_bytes + entry.length < archive_bytes / 4
        assert counters["catalog.read.bytes_returned"] == CHUNK_BYTES

    def test_handle_lru_hits_and_evictions(self, tmp_path, payload, config):
        _pack(tmp_path / "arc", payload, config, shards=4)
        obs.enable()
        try:
            with ShardedArchiveReader(
                tmp_path / "arc", max_open_shards=2
            ) as reader:
                out = reader.read_range(0, 64)
            counters = self._counters()
        finally:
            obs.disable()
        assert out == payload[: 64 * CHUNK_BYTES]
        # Round-robin over 4 shards with 2 handle slots never re-hits an
        # open handle and evicts on every open after the first two.
        assert counters["catalog.handles.miss"] == 64
        assert counters["catalog.handles.evicted"] == 62
        assert counters.get("catalog.handles.hit", 0) == 0


class TestVerify:
    def test_fsck_clean(self, tmp_path, payload, config):
        _pack(tmp_path / "arc", payload, config)
        report = fsck_archive(tmp_path / "arc")
        assert report.ok and report.sealed
        assert report.n_chunks_ok == report.n_chunks == 64
        doc = report.to_dict()
        assert doc["format"] == "PRAC" and doc["ok"]
        assert set(doc["shards"]) == {shard_name(i) for i in range(4)}
        json.dumps(doc)  # must be JSON-serializable as-is

    def test_fsck_localizes_shard_damage(self, tmp_path, payload, config):
        _pack(tmp_path / "arc", payload, config, shards=4)
        manifest = read_catalog(tmp_path / "arc")
        victim = manifest.entries[2]  # lives in shard 2
        path = tmp_path / "arc" / manifest.shards[victim.shard].name
        blob = bytearray(path.read_bytes())
        blob[victim.offset + victim.length // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        report = fsck_archive(tmp_path / "arc")
        assert not report.ok and report.sealed
        bad = [n for n, sub in report.shards.items() if not sub.ok]
        assert bad == [manifest.shards[victim.shard].name]

    def test_fsck_unsealed_archive(self, tmp_path, payload, config):
        _pack(tmp_path / "arc", payload, config)
        (tmp_path / "arc" / CATALOG_NAME).unlink()
        report = fsck_archive(tmp_path / "arc")
        assert not report.sealed and not report.ok
        # Shards are individually intact, so damage is localized to the
        # missing catalog.
        assert all(sub.ok for sub in report.shards.values())
        assert report.n_chunks_ok == 64

    def test_fsck_detects_catalog_shard_disagreement(
        self, tmp_path, payload, config
    ):
        _pack(tmp_path / "arc", payload, config, shards=2)
        # Regenerate the catalog with one lying extent (valid CRC).
        manifest = read_catalog(tmp_path / "arc")
        entries = list(manifest.entries)
        victim = entries[0]
        entries[0] = CatalogEntry(
            shard=victim.shard,
            offset=victim.offset,
            length=victim.length - 1,
            n_values=victim.n_values,
        )
        lying = ArchiveManifest(
            config=manifest.config,
            planned=manifest.planned,
            shards=manifest.shards,
            entries=tuple(entries),
            tail=manifest.tail,
            total_bytes=manifest.total_bytes,
        )
        (tmp_path / "arc" / CATALOG_NAME).write_bytes(encode_catalog(lying))
        report = fsck_archive(tmp_path / "arc")
        assert not report.ok

    def test_salvage_catalog_mode(self, tmp_path, payload, config):
        _pack(tmp_path / "arc", payload, config)
        result = salvage_archive(tmp_path / "arc", tmp_path / "out.bin")
        assert result.complete and result.mode == "catalog"
        assert (tmp_path / "out.bin").read_bytes() == payload

    def test_salvage_loses_only_damaged_chunks(
        self, tmp_path, payload, config
    ):
        _pack(tmp_path / "arc", payload, config, shards=4)
        manifest = read_catalog(tmp_path / "arc")
        victim = manifest.entries[9]
        path = tmp_path / "arc" / manifest.shards[victim.shard].name
        blob = bytearray(path.read_bytes())
        blob[victim.offset + 4] ^= 0xFF
        path.write_bytes(bytes(blob))
        result = salvage_archive(tmp_path / "arc")
        assert not result.complete
        assert result.n_recovered == 63
        doc = result.to_dict()
        assert doc["lost_ranges"] == [[9, 10]]
        assert doc["recovered_ranges"] == [[0, 9], [10, 64]]
        # Everything around the damage is byte-identical.
        lost = range(9 * CHUNK_BYTES, 10 * CHUNK_BYTES)
        assert result.data == payload[: lost.start] + payload[lost.stop : -3]

    def test_salvage_unsealed_composes_per_shard(
        self, tmp_path, payload, config
    ):
        _pack(tmp_path / "arc", payload, config, shards=4)
        (tmp_path / "arc" / CATALOG_NAME).unlink()
        result = salvage_archive(tmp_path / "arc", tmp_path / "out")
        assert result.mode == "per-shard" and not result.sealed
        assert set(result.shards) == {shard_name(i) for i in range(4)}
        doc = result.to_dict()
        assert set(doc["shards"]) == set(result.shards)
        # Each shard holds its round-robin interleave, byte-identical.
        for sid in range(4):
            expected = b"".join(
                payload[g * CHUNK_BYTES : (g + 1) * CHUNK_BYTES]
                for g in range(sid, 64, 4)
            )
            sub = result.shards[shard_name(sid)]
            assert sub.data == expected
            out = (tmp_path / "out" / f"{shard_name(sid)}.bin").read_bytes()
            assert out == expected


class TestCompact:
    @pytest.mark.parametrize("new_shards", [1, 2, 8])
    def test_rebalance_roundtrip(self, tmp_path, payload, config, new_shards):
        _pack(tmp_path / "arc", payload, config, shards=4)
        manifest = compact_archive(
            tmp_path / "arc", tmp_path / "arc2", shards=new_shards
        )
        assert len(manifest.shards) == new_shards
        assert fsck_archive(tmp_path / "arc2").ok
        with ShardedArchiveReader(tmp_path / "arc2") as reader:
            assert reader.read_all() == payload

    def test_records_copied_verbatim(self, tmp_path, payload, config):
        _pack(tmp_path / "arc", payload, config, shards=4)
        source = read_catalog(tmp_path / "arc")
        compact_archive(tmp_path / "arc", tmp_path / "arc2", shards=2)
        dest = read_catalog(tmp_path / "arc2")
        for old, new in zip(source.entries, dest.entries):
            old_path = tmp_path / "arc" / source.shards[old.shard].name
            new_path = tmp_path / "arc2" / dest.shards[new.shard].name
            old_bytes = old_path.read_bytes()[
                old.offset : old.offset + old.length
            ]
            new_bytes = new_path.read_bytes()[
                new.offset : new.offset + new.length
            ]
            assert old_bytes == new_bytes

    def test_refuses_in_place(self, tmp_path, payload, config):
        _pack(tmp_path / "arc", payload, config)
        with pytest.raises(ValueError, match="destination"):
            compact_archive(tmp_path / "arc", tmp_path / "arc")


class TestReaderCaching:
    """Satellite: parsed metadata + index chain memoization."""

    def setup_method(self):
        obs.disable()
        obs.reset()

    def teardown_method(self):
        obs.disable()
        obs.reset()

    def test_metadata_cache_hit_on_reopen(self, tmp_path, payload, config):
        path = tmp_path / "f.prif"
        with PrimacyFileWriter(path, config) as writer:
            writer.write(payload)
        obs.enable()
        try:
            with PrimacyFileReader(path) as first:
                first.read_chunk(0)
            with PrimacyFileReader(path) as second:
                assert second.read_chunk(1) == payload[
                    CHUNK_BYTES : 2 * CHUNK_BYTES
                ]
            counters = {
                name: value
                for name, _labels, value in (
                    obs.metrics.registry().snapshot()["counters"]
                )
            }
        finally:
            obs.disable()
        assert counters.get("storage.read.metadata_cache_hit", 0) >= 1

    def test_cache_invalidated_by_rewrite(self, tmp_path, payload, config):
        path = tmp_path / "f.prif"
        with PrimacyFileWriter(path, config) as writer:
            writer.write(payload)
        with PrimacyFileReader(path) as reader:
            assert reader.n_chunks == 64
        shorter = payload[: 16 * CHUNK_BYTES]
        with PrimacyFileWriter(path, config) as writer:
            writer.write(shorter)
        with PrimacyFileReader(path) as reader:
            assert reader.n_chunks == 16
            assert reader.read_all() == shorter

    def test_opt_out_reparses(self, tmp_path, payload, config):
        path = tmp_path / "f.prif"
        with PrimacyFileWriter(path, config) as writer:
            writer.write(payload)
        with PrimacyFileReader(path, cache_metadata=False) as reader:
            assert reader.read_all() == payload

    def test_reuse_chain_before_state_memoized(self, tmp_path, payload):
        config = PrimacyConfig(
            chunk_bytes=CHUNK_BYTES,
            index_policy=IndexReusePolicy.FIRST_CHUNK,
        )
        path = tmp_path / "f.prif"
        with PrimacyFileWriter(path, config) as writer:
            writer.write(payload)
        with PrimacyFileReader(path, cache_metadata=False) as reader:
            want = payload[40 * CHUNK_BYTES : 41 * CHUNK_BYTES]
            assert reader.read_chunk(40) == want
            assert 40 in reader._index_before or (
                reader.info.chunks[40].inline_index
            )
            # Second read of the same chunk resolves from the memo.
            assert reader.read_chunk(40) == want
