"""Tests for the PRIF seekable file format (repro.storage)."""

from __future__ import annotations

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors import CodecError
from repro.core import IndexReusePolicy, PrimacyConfig
from repro.core.linearize import Linearization
from repro.datasets import generate_bytes
from repro.storage import PrimacyFileReader, PrimacyFileWriter
from repro.storage.format import (
    decode_footer,
    decode_header,
    encode_footer,
    encode_header,
)


@pytest.fixture(scope="module")
def payload() -> bytes:
    return generate_bytes("obs_temp", 20000, seed=4) + b"QX"


def _roundtrip(payload: bytes, config: PrimacyConfig) -> PrimacyFileReader:
    buf = io.BytesIO()
    with PrimacyFileWriter(buf, config) as writer:
        writer.write(payload)
    return PrimacyFileReader(io.BytesIO(buf.getvalue()))


class TestHeaderFooter:
    def test_header_roundtrip(self):
        config = PrimacyConfig(
            codec="pylzo",
            chunk_bytes=64 * 1024,
            word_bytes=4,
            high_bytes=1,
            linearization=Linearization.ROW,
            index_policy=IndexReusePolicy.CORRELATED,
            checksum=False,
        )
        decoded, pos, planned = decode_header(encode_header(config))
        assert decoded == config
        assert pos == len(encode_header(config))
        assert planned is False

    def test_header_planned_flag_roundtrip(self):
        config = PrimacyConfig()
        decoded, pos, planned = decode_header(encode_header(config, planned=True))
        assert decoded == config
        assert planned is True
        assert pos == len(encode_header(config, planned=True))

    def test_header_rejects_garbage(self):
        with pytest.raises(CodecError):
            decode_header(b"NOPE" + bytes(20))

    def test_footer_roundtrip(self):
        from repro.storage.format import ChunkEntry

        chunks = [
            ChunkEntry(offset=30, length=100, n_values=8, inline_index=True, index_base=0),
            ChunkEntry(offset=131, length=50, n_values=4, inline_index=False, index_base=0),
        ]
        blob = encode_footer(chunks, b"tl", 99)
        out_chunks, tail, total = decode_footer(blob)
        assert out_chunks == chunks
        assert tail == b"tl"
        assert total == 99


class TestRoundtrip:
    @pytest.mark.parametrize("policy", list(IndexReusePolicy))
    def test_read_all(self, payload, policy):
        reader = _roundtrip(
            payload, PrimacyConfig(chunk_bytes=16 * 1024, index_policy=policy)
        )
        assert reader.read_all() == payload

    def test_streaming_write_in_pieces(self, payload):
        buf = io.BytesIO()
        with PrimacyFileWriter(buf, PrimacyConfig(chunk_bytes=16 * 1024)) as w:
            for i in range(0, len(payload), 1013):
                w.write(payload[i : i + 1013])
        reader = PrimacyFileReader(io.BytesIO(buf.getvalue()))
        assert reader.read_all() == payload

    def test_write_matches_bulk(self, payload):
        """Streaming in pieces and in one call produce identical files."""
        cfg = PrimacyConfig(chunk_bytes=16 * 1024)
        a = io.BytesIO()
        with PrimacyFileWriter(a, cfg) as w:
            w.write(payload)
        b = io.BytesIO()
        with PrimacyFileWriter(b, cfg) as w:
            for i in range(0, len(payload), 333):
                w.write(payload[i : i + 333])
        assert a.getvalue() == b.getvalue()

    def test_empty_file(self):
        buf = io.BytesIO()
        with PrimacyFileWriter(buf) as w:
            pass
        reader = PrimacyFileReader(io.BytesIO(buf.getvalue()))
        assert reader.read_all() == b""
        assert reader.n_values == 0

    def test_tail_only_file(self):
        buf = io.BytesIO()
        with PrimacyFileWriter(buf) as w:
            w.write(b"abc")
        reader = PrimacyFileReader(io.BytesIO(buf.getvalue()))
        assert reader.read_all() == b"abc"

    def test_float32_words(self):
        data = np.arange(5000, dtype="<f4").tobytes()
        cfg = PrimacyConfig(chunk_bytes=8 * 1024, word_bytes=4, high_bytes=1)
        reader = _roundtrip(data, cfg)
        assert reader.read_all() == data
        assert reader.read_values(100, 50) == data[400:600]

    def test_writer_on_path(self, tmp_path, payload):
        path = tmp_path / "data.pri"
        with PrimacyFileWriter(path, PrimacyConfig(chunk_bytes=16 * 1024)) as w:
            w.write(payload)
        with PrimacyFileReader(path) as reader:
            assert reader.read_all() == payload

    def test_write_after_close_rejected(self):
        w = PrimacyFileWriter(io.BytesIO())
        w.close()
        with pytest.raises(ValueError):
            w.write(b"x")

    def test_writer_stats(self, payload):
        buf = io.BytesIO()
        with PrimacyFileWriter(buf, PrimacyConfig(chunk_bytes=16 * 1024)) as w:
            w.write(payload)
        assert w.stats.original_bytes == len(payload)
        assert w.stats.container_bytes == len(buf.getvalue()) - _footer_len(buf)
        assert w.stats.compression_ratio > 1.0


def _footer_len(buf: io.BytesIO) -> int:
    raw = buf.getvalue()
    return int.from_bytes(raw[-16:-8], "little") + 16


class TestRandomAccess:
    @pytest.mark.parametrize("policy", list(IndexReusePolicy))
    def test_ranges_match_source(self, payload, policy):
        reader = _roundtrip(
            payload, PrimacyConfig(chunk_bytes=8 * 1024, index_policy=policy)
        )
        word = 8
        rng = np.random.default_rng(0)
        for _ in range(25):
            start = int(rng.integers(0, reader.n_values))
            count = int(rng.integers(0, min(3000, reader.n_values - start)))
            assert reader.read_values(start, count) == payload[
                start * word : (start + count) * word
            ]

    def test_whole_range(self, payload):
        reader = _roundtrip(payload, PrimacyConfig(chunk_bytes=8 * 1024))
        n = reader.n_values
        assert reader.read_values(0, n) == payload[: n * 8]

    def test_single_value(self, payload):
        reader = _roundtrip(payload, PrimacyConfig(chunk_bytes=8 * 1024))
        assert reader.read_values(777, 1) == payload[777 * 8 : 778 * 8]

    def test_cross_chunk_boundary(self, payload):
        reader = _roundtrip(payload, PrimacyConfig(chunk_bytes=8 * 1024))
        per_chunk = 8 * 1024 // 8
        start = per_chunk - 3
        got = reader.read_values(start, 6)
        assert got == payload[start * 8 : (start + 6) * 8]

    def test_out_of_range_rejected(self, payload):
        reader = _roundtrip(payload, PrimacyConfig(chunk_bytes=8 * 1024))
        with pytest.raises(ValueError):
            reader.read_values(reader.n_values, 1)
        with pytest.raises(ValueError):
            reader.read_values(-1, 1)

    def test_zero_count(self, payload):
        reader = _roundtrip(payload, PrimacyConfig(chunk_bytes=8 * 1024))
        assert reader.read_values(5, 0) == b""

    def test_reuse_chain_resolution_without_prior_reads(self, payload):
        """Seek straight into the middle of a FIRST_CHUNK reuse chain."""
        reader = _roundtrip(
            payload,
            PrimacyConfig(
                chunk_bytes=4 * 1024,
                index_policy=IndexReusePolicy.FIRST_CHUNK,
            ),
        )
        # Last chunk depends on every predecessor's extensions.
        last = reader.n_chunks - 1
        entry = reader.chunk_entries()[last]
        start = reader.n_values - entry.n_values
        got = reader.read_values(start, entry.n_values)
        assert got == payload[start * 8 : (start + entry.n_values) * 8]

    @given(
        start_frac=st.floats(0, 0.99),
        count=st.integers(0, 2000),
        policy=st.sampled_from(list(IndexReusePolicy)),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_random_access(self, payload, start_frac, count, policy):
        reader = _roundtrip(
            payload, PrimacyConfig(chunk_bytes=8 * 1024, index_policy=policy)
        )
        start = int(start_frac * reader.n_values)
        count = min(count, reader.n_values - start)
        assert reader.read_values(start, count) == payload[
            start * 8 : (start + count) * 8
        ]


class TestOversizedHeader:
    def test_header_larger_than_probe_window_reads_incrementally(self, payload):
        """A header past the 4 KiB probe must be re-read, not rejected."""
        from repro.compressors import register_codec
        from repro.compressors.deflate import DeflateCodec
        from repro.storage.reader import _HEADER_PROBE_BYTES

        long_name = "zlib-alias-" + "x" * (_HEADER_PROBE_BYTES + 100)

        @register_codec
        class _LongNameCodec(DeflateCodec):
            name = long_name

        try:
            buf = io.BytesIO()
            cfg = PrimacyConfig(codec=long_name, chunk_bytes=16 * 1024)
            with PrimacyFileWriter(buf, cfg) as w:
                w.write(payload)
            reader = PrimacyFileReader(io.BytesIO(buf.getvalue()))
            assert reader._header_len > _HEADER_PROBE_BYTES
            assert reader.read_all() == payload
        finally:
            # Don't leak the synthetic codec into the global registry.
            from repro.compressors.base import _REGISTRY

            _REGISTRY.pop(long_name, None)


class TestCorruption:
    def test_missing_end_marker(self, payload):
        buf = io.BytesIO()
        with PrimacyFileWriter(buf, PrimacyConfig(chunk_bytes=16 * 1024)) as w:
            w.write(payload)
        raw = bytearray(buf.getvalue())
        raw[-2] ^= 0xFF
        with pytest.raises(CodecError):
            PrimacyFileReader(io.BytesIO(bytes(raw)))

    def test_truncated_file(self, payload):
        buf = io.BytesIO()
        with PrimacyFileWriter(buf, PrimacyConfig(chunk_bytes=16 * 1024)) as w:
            w.write(payload)
        with pytest.raises(CodecError):
            PrimacyFileReader(io.BytesIO(buf.getvalue()[:10]))

    def test_corrupt_chunk_detected_by_checksum(self, payload):
        buf = io.BytesIO()
        with PrimacyFileWriter(buf, PrimacyConfig(chunk_bytes=16 * 1024)) as w:
            w.write(payload)
        raw = bytearray(buf.getvalue())
        entry = PrimacyFileReader(io.BytesIO(bytes(raw))).chunk_entries()[1]
        raw[entry.offset + entry.length // 2] ^= 0xFF
        reader = PrimacyFileReader(io.BytesIO(bytes(raw)))
        with pytest.raises(CodecError):
            reader.read_all()
