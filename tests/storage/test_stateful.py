"""Stateful property test: the PRIF writer/reader as a state machine.

Hypothesis drives arbitrary interleavings of writes (varied sizes and
content classes) followed by arbitrary reads; the file must always agree
with an in-memory reference buffer.
"""

from __future__ import annotations

import io

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.core import PrimacyConfig
from repro.storage import PrimacyFileReader, PrimacyFileWriter


class PrifMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.buffer = io.BytesIO()
        self.writer = PrimacyFileWriter(
            self.buffer, PrimacyConfig(chunk_bytes=4096)
        )
        self.reference = bytearray()
        self.reader = None
        self.rng = np.random.default_rng(0)

    # -- write phase -------------------------------------------------------

    @precondition(lambda self: self.reader is None)
    @rule(n_values=st.integers(0, 600), kind=st.sampled_from(["smooth", "noise", "zeros"]))
    def write_values(self, n_values, kind):
        if kind == "smooth":
            vals = np.cumsum(self.rng.normal(0, 0.01, n_values)) + 10
            data = vals.astype("<f8").tobytes()
        elif kind == "noise":
            data = self.rng.bytes(n_values * 8)
        else:
            data = b"\x00" * (n_values * 8)
        self.writer.write(data)
        self.reference += data

    @precondition(lambda self: self.reader is None)
    @rule(n_bytes=st.integers(1, 7))
    def write_unaligned(self, n_bytes):
        data = self.rng.bytes(n_bytes)
        self.writer.write(data)
        self.reference += data

    @precondition(lambda self: self.reader is None)
    @rule()
    def finalize(self):
        self.writer.close()
        self.reader = PrimacyFileReader(io.BytesIO(self.buffer.getvalue()))

    # -- read phase --------------------------------------------------------

    @precondition(lambda self: self.reader is not None)
    @rule(frac=st.floats(0, 1), count=st.integers(0, 500))
    def read_range(self, frac, count):
        n = self.reader.n_values
        start = int(frac * n) if n else 0
        count = min(count, n - start)
        expected = bytes(self.reference[start * 8 : (start + count) * 8])
        assert self.reader.read_values(start, count) == expected

    @precondition(lambda self: self.reader is not None)
    @rule()
    def read_everything(self):
        assert self.reader.read_all() == bytes(self.reference)

    @invariant()
    def reference_is_consistent(self):
        if self.reader is not None:
            word_aligned = len(self.reference) - len(self.reference) % 8
            assert self.reader.n_values == word_aligned // 8


PrifMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=12, deadline=None
)
TestPrifStateful = PrifMachine.TestCase
