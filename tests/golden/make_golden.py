"""Generator for the pinned golden-corpus artifacts.

Run ``python tests/golden/make_golden.py`` (with ``src`` on the path)
to regenerate everything under ``tests/golden/data/``.  Regeneration is
only legitimate alongside a *deliberate, documented* format change --
the committed artifacts are the compatibility contract older files hold
against today's decoder.

Everything here is deterministic: fixed seeds, fixed configs, pure-
Python codecs.  The CORRELATED index policy is chosen to pin the
trickiest decode path (index-reuse chains with extensions).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core import IndexReusePolicy, PrimacyConfig

DATA_DIR = Path(__file__).parent / "data"
PRIF_PATH = DATA_DIR / "golden.prif"
PRCK_PATH = DATA_DIR / "golden.prck"
PAYLOAD_PATH = DATA_DIR / "golden_payload.bin"

#: Seed honoring the paper's publication year.
SEED = 2012

# The goldens predate the batch entropy kernels, whose LZ77 parse may
# legally pick different (equally valid) matches.  Pin the reference
# backend so re-encoding stays byte-identical to the committed corpus;
# decode-side tests still run through the session-default backend.
PRIF_CONFIG = PrimacyConfig(
    chunk_bytes=4096,
    index_policy=IndexReusePolicy.CORRELATED,
    codec_options={"kernels": "reference"},
)
PRCK_CONFIG = PrimacyConfig(
    chunk_bytes=4096,
    codec_options={"kernels": "reference"},
)


def payload_bytes() -> bytes:
    """4096 float64 values: a smooth field with a regime change."""
    rng = np.random.default_rng(SEED)
    smooth = np.cumsum(rng.normal(0.0, 0.01, 3072)) + 300.0
    rough = rng.normal(0.0, 1e6, 1024)
    return np.concatenate([smooth, rough]).astype("<f8").tobytes()


def checkpoint_arrays() -> dict[int, dict[str, np.ndarray]]:
    """Two steps, mixed dtypes (exercises the word-width override)."""
    rng = np.random.default_rng(SEED + 1)
    temp0 = np.cumsum(rng.normal(size=1024)).reshape(16, 64)
    vel0 = rng.normal(size=512).astype("<f4").reshape(8, 8, 8)
    return {
        0: {"temp": temp0, "vel": vel0},
        1: {"temp": temp0 + 0.5, "vel": (vel0 * 2.0).astype("<f4")},
    }


def build_prif(path: Path) -> None:
    from repro.storage import PrimacyFileWriter

    with PrimacyFileWriter(path, PRIF_CONFIG, durable=False) as writer:
        writer.write(payload_bytes())


def build_prck(path: Path) -> None:
    from repro.checkpoint import CheckpointWriter

    with CheckpointWriter(path, PRCK_CONFIG, durable=False) as writer:
        for step, variables in sorted(checkpoint_arrays().items()):
            writer.write_step(step, variables)


def main() -> None:
    DATA_DIR.mkdir(parents=True, exist_ok=True)
    PAYLOAD_PATH.write_bytes(payload_bytes())
    build_prif(PRIF_PATH)
    build_prck(PRCK_PATH)
    for p in (PAYLOAD_PATH, PRIF_PATH, PRCK_PATH):
        print(f"wrote {p} ({p.stat().st_size} bytes)")


if __name__ == "__main__":
    main()
