"""Format stability against the pinned golden corpus.

The artifacts under ``data/`` were produced by
:mod:`tests.golden.make_golden` and committed.  Today's decoder must
read them byte-exactly -- forever.  A failure here means a format break:
either revert it, or version the format and regenerate the corpus as
part of a deliberate migration.
"""

from __future__ import annotations

import io

import numpy as np
import pytest

from tests.golden import make_golden as gold


@pytest.fixture(scope="module")
def payload() -> bytes:
    return gold.PAYLOAD_PATH.read_bytes()


class TestPrifGolden:
    def test_decodes_byte_exactly(self, payload):
        from repro.storage import PrimacyFileReader

        with PrimacyFileReader(gold.PRIF_PATH) as reader:
            assert reader.read_all() == payload

    def test_pins_the_reuse_chain_path(self):
        from repro.storage import PrimacyFileReader

        with PrimacyFileReader(gold.PRIF_PATH) as reader:
            entries = reader.chunk_entries()
            assert len(entries) > 1
            # The corpus must keep exercising index-reuse chains; a
            # regenerated corpus that lost them would weaken this test.
            assert any(not e.inline_index for e in entries)
            assert entries[0].inline_index

    def test_random_access_matches(self, payload):
        from repro.storage import PrimacyFileReader

        with PrimacyFileReader(gold.PRIF_PATH) as reader:
            got = reader.read_values(1000, 300)
        assert got == payload[8 * 1000 : 8 * 1300]

    def test_reencode_is_byte_identical(self, payload):
        """The encoder is deterministic: same input, same config, same
        bytes.  Catches accidental format drift on the write side."""
        from repro.storage import PrimacyFileWriter

        buf = io.BytesIO()
        with PrimacyFileWriter(buf, gold.PRIF_CONFIG) as writer:
            writer.write(payload)
        assert buf.getvalue() == gold.PRIF_PATH.read_bytes()

    def test_fsck_accepts_the_corpus(self):
        from repro.storage.verify import fsck

        assert fsck(gold.PRIF_PATH).ok


class TestPrckGolden:
    def test_every_variable_decodes_exactly(self):
        from repro.checkpoint import CheckpointReader

        expected = gold.checkpoint_arrays()
        with CheckpointReader(gold.PRCK_PATH) as reader:
            assert reader.steps() == sorted(expected)
            for step, variables in expected.items():
                assert reader.variables(step) == sorted(variables)
                for name, arr in variables.items():
                    got = reader.read(step, name)
                    assert got.dtype == arr.dtype
                    assert got.shape == arr.shape
                    np.testing.assert_array_equal(got, arr)

    def test_reencode_is_byte_identical(self, tmp_path):
        out = tmp_path / "re.prck"
        gold.build_prck(out)
        assert out.read_bytes() == gold.PRCK_PATH.read_bytes()

    def test_fsck_accepts_the_corpus(self):
        from repro.storage.verify import fsck

        assert fsck(gold.PRCK_PATH).ok
