"""Concurrency stress: many async clients, byte-identical answers.

The acceptance bar from the serving design: >= 16 concurrent clients
each firing a burst of interleaved compress/decompress requests, with
every response byte-identical to the one-shot CLI path and the server's
books balanced afterwards (acknowledged == answered, nothing in
flight).  A second test replays a scaled-down stress run in a
subprocess under ``REPRO_SANITIZE=1`` with leak warnings promoted to
errors, proving the engine's shared-memory segments and views are all
released when the server drains.
"""

from __future__ import annotations

import asyncio
import os
import subprocess
import sys
from pathlib import Path

from repro.datasets import generate_bytes
from repro.serve.client import AsyncServeClient
from repro.serve.protocol import RequestConfig

from tests.serve.conftest import BASE_CONFIG
from tests.serve.harness import reference_compress

N_CLIENTS = 16
N_REQUESTS = 4

RC = RequestConfig(chunk_bytes=BASE_CONFIG.chunk_bytes)

_KINDS = ("obs_temp", "num_plasma")


def _payloads() -> list[bytes]:
    """A few distinct multi-chunk payloads; index by client round."""
    return [
        generate_bytes(kind, 6 * 1024, seed=seed)
        for kind in _KINDS
        for seed in (5, 6)
    ]


def test_sixteen_clients_byte_identical(server):
    payloads = _payloads()
    references = [reference_compress(p, BASE_CONFIG) for p in payloads]
    host, port = server.address

    async def one_client(index: int) -> None:
        async with await AsyncServeClient.open(host, port) as client:
            for round_no in range(N_REQUESTS):
                payload = payloads[(index + round_no) % len(payloads)]
                expected = references[(index + round_no) % len(payloads)]
                container = await client.compress(payload, config=RC)
                assert container == expected, (
                    f"client {index} round {round_no}: container differs "
                    f"from the one-shot path"
                )
                restored = await client.decompress(container)
                assert restored == payload

    async def storm() -> None:
        await asyncio.gather(*(one_client(i) for i in range(N_CLIENTS)))

    asyncio.run(storm())

    with server.client() as client:
        doc = client.stat()
    assert doc["server"]["acknowledged"] == doc["server"]["answered"]
    assert doc["server"]["inflight_requests"] == 0
    assert doc["server"]["inflight_bytes"] == 0


_SANITIZE_SCRIPT = r"""
import asyncio
import warnings

from repro.lint.sanitize import SanitizeLeakWarning
from repro.core.primacy import PrimacyConfig
from repro.serve.client import AsyncServeClient
from repro.serve.daemon import PrimacyServer, ServeConfig
from repro.serve.protocol import RequestConfig
from repro.datasets import generate_bytes

warnings.simplefilter("error", SanitizeLeakWarning)

BASE = PrimacyConfig(chunk_bytes=2048)
RC = RequestConfig(chunk_bytes=2048)
PAYLOAD = generate_bytes("obs_temp", 6 * 1024, seed=5)


async def main() -> None:
    server = PrimacyServer(ServeConfig(workers=2, base=BASE))
    await server.start()
    host, port = server.address

    async def one_client() -> None:
        async with await AsyncServeClient.open(host, port) as client:
            for _ in range(3):
                container = await client.compress(PAYLOAD, config=RC)
                assert await client.decompress(container) == PAYLOAD

    await asyncio.gather(*(one_client() for _ in range(8)))
    await server.drain()


asyncio.run(main())
print("SANITIZE_CLEAN")
"""


def test_stress_is_sanitizer_clean():
    env = dict(os.environ)
    env["REPRO_SANITIZE"] = "1"
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _SANITIZE_SCRIPT],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    assert "SANITIZE_CLEAN" in proc.stdout
    assert "REPRO_SANITIZE" not in proc.stderr, proc.stderr
