"""In-process serve harness.

Runs a :class:`~repro.serve.daemon.PrimacyServer` on a dedicated event
loop in a background thread, so blocking test code (and blocking
:class:`~repro.serve.client.ServeClient` instances) can talk to a real
listening socket without subprocesses.  ``run`` submits a coroutine to
the server's loop and blocks for its result -- the escape hatch tests
use to poke server internals (``drain``, gauges) from the test thread.

``reference_compress`` produces the one-shot container the daemon's
response must be byte-identical to, via the same engine-driven code
path the CLI uses (``workers=1`` keeps it inline and deterministic).
"""

from __future__ import annotations

import asyncio
import threading
from collections.abc import Coroutine
from typing import Any

from repro.core.primacy import PrimacyConfig
from repro.parallel.pool import ParallelCompressor
from repro.serve.client import ServeClient
from repro.serve.daemon import PrimacyServer, ServeConfig

__all__ = ["ServerHarness", "reference_compress"]


class ServerHarness:
    """A live server on a background loop (context manager)."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        self.server: PrimacyServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._startup_error: BaseException | None = None

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "ServerHarness":
        started = threading.Event()

        def _run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                self.server = PrimacyServer(self.config)
                loop.run_until_complete(self.server.start())
            except BaseException as exc:  # pragma: no cover - bad config
                self._startup_error = exc
                started.set()
                return
            started.set()
            try:
                loop.run_forever()
            finally:
                loop.close()

        self._thread = threading.Thread(
            target=_run, name="serve-harness", daemon=True
        )
        self._thread.start()
        if not started.wait(timeout=30):  # pragma: no cover - hung start
            raise RuntimeError("server failed to start within 30s")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def stop(self) -> None:
        """Stop the server and tear the loop down (idempotent)."""
        loop, self._loop = self._loop, None
        if loop is None:
            return
        try:
            if self.server is not None:
                asyncio.run_coroutine_threadsafe(
                    self.server.stop(), loop
                ).result(timeout=30)
        finally:
            loop.call_soon_threadsafe(loop.stop)
            assert self._thread is not None
            self._thread.join(timeout=30)

    def __enter__(self) -> "ServerHarness":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- helpers --------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        assert self.server is not None
        return self.server.address

    def run(self, coro: Coroutine[Any, Any, Any], timeout: float = 60.0):
        """Run ``coro`` on the server's loop; block for its result."""
        assert self._loop is not None, "harness is not running"
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(
            timeout
        )

    def client(self, timeout: float = 60.0) -> ServeClient:
        """A fresh blocking client connected to this server."""
        host, port = self.address
        return ServeClient(host, port, timeout=timeout)


def reference_compress(
    payload: bytes,
    base: PrimacyConfig,
    auto: bool = False,
    theta_milli: int = 4000,
) -> bytes:
    """The container the one-shot CLI path would produce for ``payload``."""
    if auto:
        from repro.planner.candidates import PlannerConfig
        from repro.planner.compressor import PlannedCompressor

        planned = PlannedCompressor(
            PlannerConfig(base=base, network_mbps=theta_milli / 1000.0),
            workers=1,
        )
        with planned:
            return planned.compress(payload)[0]
    with ParallelCompressor(base, workers=1) as pool:
        return pool.compress(payload)[0]
