"""Process-level fault injection for the serve daemon (``faults``).

Three failure families, each pinned to a typed, bounded outcome:

* **worker death** -- SIGKILL every pool worker mid-service: the
  affected request answers ``INTERNAL`` (typed, never a hang), the
  engine recovers, and the very next request succeeds on a fresh pool;
* **client death** -- a client that vanishes mid-frame (or right after
  sending) costs nothing: the server keeps answering other clients;
* **SIGTERM drain** -- a real ``primacy serve`` subprocess under
  concurrent load: every *acknowledged* request completes with a valid
  container, the process exits 0, and the drain checkpoint's books
  balance (acknowledged == answered, nothing in flight).

Marked ``faults`` -- excluded from the default run, exercised by the CI
fault-injection job (``pytest -m faults``).
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.checkpoint import CheckpointReader
from repro.core.primacy import PrimacyCompressor
from repro.serve.client import ServeClient
from repro.serve.daemon import ServeConfig
from repro.serve.protocol import RequestConfig, ServeError, Status

from tests.serve.conftest import BASE_CONFIG
from tests.serve.harness import ServerHarness

pytestmark = pytest.mark.faults

RC = RequestConfig(chunk_bytes=BASE_CONFIG.chunk_bytes)


# -- worker death -------------------------------------------------------


def test_sigkilled_workers_cost_one_request_not_the_daemon(payload):
    config = ServeConfig(workers=2, base=BASE_CONFIG)
    with ServerHarness(config) as harness:
        with harness.client(timeout=120) as client:
            # Healthy request first: starts the worker pool.
            container = client.compress(payload, config=RC)
            assert PrimacyCompressor(BASE_CONFIG).decompress(container) == (
                payload
            )
            pids = harness.server.bridge.engine.worker_pids()
            assert pids, "pool did not start"
            for pid in pids:
                os.kill(pid, signal.SIGKILL)
            # The next request rides the dead pool: typed INTERNAL.
            with pytest.raises(ServeError) as err:
                client.compress(payload, config=RC)
            assert err.value.status is Status.INTERNAL
            # The engine recovered: a fresh pool serves the next one.
            container = client.compress(payload, config=RC)
            assert PrimacyCompressor(BASE_CONFIG).decompress(container) == (
                payload
            )
            assert client.health()["status"] == "ok"
            assert client.stat()["server"]["inflight_requests"] == 0


# -- client death -------------------------------------------------------


def test_client_disconnect_mid_frame_leaves_server_healthy(server, payload):
    host, port = server.address
    from repro.serve.protocol import Op, Request, encode_request

    frame = encode_request(
        Request(op=Op.COMPRESS, request_id=1, payload=payload, config=RC)
    )
    # Half a frame, then vanish.
    sock = socket.create_connection((host, port), timeout=10)
    sock.sendall(frame[: len(frame) // 2])
    sock.close()
    # A full request, then vanish without reading the response.
    sock = socket.create_connection((host, port), timeout=10)
    sock.sendall(frame)
    sock.close()
    # Give the server a beat to notice both corpses, then prove it
    # still serves: the in-flight work of the second corpse completes
    # server-side and is simply discarded.
    deadline = time.monotonic() + 30
    while True:
        try:
            with server.client() as client:
                assert client.decompress(
                    client.compress(payload, config=RC)
                ) == payload
            break
        except ConnectionError:  # pragma: no cover - transient
            if time.monotonic() > deadline:
                raise
            time.sleep(0.1)
    with server.client() as client:
        doc = client.stat()
    assert doc["server"]["acknowledged"] == doc["server"]["answered"]


# -- SIGTERM drain ------------------------------------------------------


def _read_announce(proc: subprocess.Popen) -> tuple[str, int]:
    assert proc.stdout is not None
    line = proc.stdout.readline().decode("utf-8", "replace").strip()
    # "primacy serve listening on HOST:PORT"
    assert "listening on" in line, line
    address = line.rsplit(" ", 1)[-1]
    host, _, port = address.rpartition(":")
    return host, int(port)


def test_sigterm_drain_loses_no_acknowledged_request(tmp_path, payload):
    checkpoint = tmp_path / "drain.prck"
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--port",
            "0",
            "--workers",
            "2",
            "--drain-checkpoint",
            str(checkpoint),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
    )
    try:
        host, port = _read_announce(proc)
        ok_containers: list[bytes] = []
        refused = threading.Event()
        lock = threading.Lock()
        first_round = threading.Barrier(5)

        def hammer() -> None:
            try:
                with ServeClient(host, port, timeout=120) as client:
                    for round_no in range(50):
                        container = client.compress(payload, config=RC)
                        with lock:
                            ok_containers.append(container)
                        if round_no == 0:
                            first_round.wait(timeout=60)
            except ServeError as exc:
                assert exc.status is Status.DRAINING
                refused.set()
            except (ConnectionError, OSError):
                # The server hung up after the drain finished; every
                # response it *sent* was already collected above.
                pass

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        # Everyone has one answered request in the books; now pull the
        # plug mid-storm.
        first_round.wait(timeout=60)
        proc.send_signal(signal.SIGTERM)
        for t in threads:
            t.join(timeout=120)
        assert proc.wait(timeout=120) == 0
    finally:
        if proc.poll() is None:  # pragma: no cover - hung daemon
            proc.kill()
            proc.wait()

    # Every container the server acknowledged came back complete.
    decoder = PrimacyCompressor(BASE_CONFIG)
    for container in ok_containers:
        assert decoder.decompress(container) == payload

    reader = CheckpointReader(checkpoint)
    acknowledged = int(reader.read(0, "requests_acknowledged")[0])
    answered = int(reader.read(0, "requests_answered")[0])
    in_flight = int(reader.read(0, "requests_in_flight")[0])
    assert acknowledged == answered, "drain abandoned acknowledged work"
    assert in_flight == 0
    assert acknowledged == len(ok_containers), (
        f"server acknowledged {acknowledged} requests but clients got "
        f"{len(ok_containers)} OK responses"
    )
