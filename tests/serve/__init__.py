"""Protocol-level test harness for the ``primacy serve`` daemon."""
