"""Shared fixtures for the serve suite.

One module-scoped multi-worker server carries the happy-path and
stress tests (pool startup is the expensive part); admission-control
tests build their own cheap ``workers=1`` servers so refusals never
perturb the shared one.
"""

from __future__ import annotations

import pytest

from repro.core.primacy import PrimacyConfig
from repro.datasets import generate_bytes
from repro.serve.daemon import ServeConfig

from tests.serve.harness import ServerHarness

#: Small chunks so a few-KiB payload spans several chunks (exercising
#: fan-out and reassembly) without slowing the suite down.
BASE_CONFIG = PrimacyConfig(chunk_bytes=2048)


@pytest.fixture(scope="module")
def server():
    """A live multi-worker server shared across a test module."""
    config = ServeConfig(workers=2, base=BASE_CONFIG)
    with ServerHarness(config) as harness:
        yield harness


@pytest.fixture(scope="session")
def payload() -> bytes:
    """A multi-chunk compressible payload (float64 temperature field)."""
    return generate_bytes("obs_temp", 12 * 1024, seed=13)
