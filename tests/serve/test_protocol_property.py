"""Property suite for the serve wire protocol.

The protocol's adversarial contract, stated as properties:

* every encodable :class:`Request`/:class:`Response` round-trips
  bit-exactly through the frame assembler regardless of how the
  transport slices the byte stream;
* every *truncation* of a valid frame body raises a typed
  :class:`CorruptionError` (usually its :class:`TruncationError`
  subclass) -- never an ``IndexError`` and never a silent partial
  decode;
* every *mutation* (byte flips) and arbitrary garbage either decodes
  to a well-formed message or raises the same typed taxonomy;
* the assembler never hangs or buffers unboundedly on garbage: it
  either yields frames, raises, or asks for more bytes.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.compressors.base import CorruptionError, TruncationError
from repro.core.linearize import Linearization
from repro.serve.protocol import (
    FLAG_AUTO,
    Op,
    Request,
    RequestConfig,
    Response,
    Status,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
    request_assembler,
    response_assembler,
)
from repro.util.varint import decode_uvarint

_SETTINGS = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_ASCII_NAME = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    max_size=32,
)

_CONFIGS = st.builds(
    RequestConfig,
    codec=st.text(
        alphabet=st.characters(min_codepoint=97, max_codepoint=122),
        min_size=1,
        max_size=16,
    ),
    chunk_bytes=st.integers(min_value=0, max_value=2**40),
    high_bytes=st.integers(min_value=0, max_value=8),
    linearization=st.sampled_from(list(Linearization)),
    theta_milli=st.integers(min_value=0, max_value=10**7),
)

_REQUESTS = st.builds(
    Request,
    op=st.sampled_from(list(Op)),
    request_id=st.integers(min_value=0, max_value=2**62),
    payload=st.binary(max_size=2048),
    tenant=_ASCII_NAME,
    flags=st.sampled_from([0, FLAG_AUTO]),
    config=st.none() | _CONFIGS,
)

_RESPONSES = st.builds(
    Response,
    status=st.sampled_from(list(Status)),
    request_id=st.integers(min_value=0, max_value=2**62),
    payload=st.binary(max_size=2048),
    detail=st.text(max_size=200),
)


def _frame_body(frame: bytes) -> bytes:
    """Strip the outer uvarint length prefix off a complete frame."""
    length, pos = decode_uvarint(frame, 0)
    assert pos + length == len(frame)
    return frame[pos:]


def _feed_sliced(assembler, frame: bytes, cuts: list[int]) -> list[bytes]:
    """Feed ``frame`` in the pieces described by sorted ``cuts``."""
    frames: list[bytes] = []
    prev = 0
    for cut in sorted(set(cuts)) + [len(frame)]:
        frames.extend(assembler.feed(frame[prev:cut]))
        prev = cut
    return frames


class TestRoundTrip:
    @given(request=_REQUESTS, data=st.data())
    @_SETTINGS
    def test_request_round_trips_under_any_slicing(self, request, data):
        frame = encode_request(request)
        n_cuts = data.draw(st.integers(min_value=0, max_value=4))
        cuts = [
            data.draw(st.integers(min_value=0, max_value=len(frame)))
            for _ in range(n_cuts)
        ]
        frames = _feed_sliced(request_assembler(), frame, cuts)
        assert len(frames) == 1
        assert decode_request(frames[0]) == request

    @given(response=_RESPONSES, data=st.data())
    @_SETTINGS
    def test_response_round_trips_under_any_slicing(self, response, data):
        frame = encode_response(response)
        n_cuts = data.draw(st.integers(min_value=0, max_value=4))
        cuts = [
            data.draw(st.integers(min_value=0, max_value=len(frame)))
            for _ in range(n_cuts)
        ]
        frames = _feed_sliced(response_assembler(), frame, cuts)
        assert len(frames) == 1
        assert decode_response(frames[0]) == response

    @given(requests=st.lists(_REQUESTS, min_size=2, max_size=5))
    @_SETTINGS
    def test_back_to_back_frames_stay_delimited(self, requests):
        stream = b"".join(encode_request(r) for r in requests)
        frames = request_assembler().feed(stream)
        assert [decode_request(f) for f in frames] == requests


class TestTruncation:
    @given(request=_REQUESTS, data=st.data())
    @_SETTINGS
    def test_any_truncated_request_raises_typed(self, request, data):
        body = _frame_body(encode_request(request))
        cut = data.draw(st.integers(min_value=0, max_value=len(body) - 1))
        try:
            decode_request(body[:cut])
        except CorruptionError:
            pass  # TruncationError included; both are the contract
        else:
            raise AssertionError(
                f"decode_request accepted a {cut}/{len(body)}-byte prefix"
            )

    @given(response=_RESPONSES, data=st.data())
    @_SETTINGS
    def test_any_truncated_response_raises_typed(self, response, data):
        body = _frame_body(encode_response(response))
        cut = data.draw(st.integers(min_value=0, max_value=len(body) - 1))
        try:
            decode_response(body[:cut])
        except CorruptionError:
            pass
        else:
            raise AssertionError(
                f"decode_response accepted a {cut}/{len(body)}-byte prefix"
            )

    def test_empty_body_is_truncation(self):
        for decode in (decode_request, decode_response):
            try:
                decode(b"")
            except TruncationError:
                pass
            else:  # pragma: no cover - contract violation
                raise AssertionError("empty body decoded")


class TestGarbage:
    @given(junk=st.binary(max_size=512))
    @_SETTINGS
    def test_assembler_never_hangs_or_leaks_exceptions(self, junk):
        assembler = request_assembler()
        try:
            frames = assembler.feed(junk)
        except CorruptionError:
            return  # typed rejection is the contract
        for body in frames:  # pragma: no branch
            try:
                decode_request(body)
            except CorruptionError:
                pass

    @given(request=_REQUESTS, data=st.data())
    @_SETTINGS
    def test_any_byte_flip_decodes_or_raises_typed(self, request, data):
        body = bytearray(_frame_body(encode_request(request)))
        offset = data.draw(
            st.integers(min_value=0, max_value=len(body) - 1)
        )
        mask = data.draw(st.integers(min_value=1, max_value=255))
        body[offset] ^= mask
        try:
            decoded = decode_request(bytes(body))
        except CorruptionError:
            return
        # A flip inside the payload (or another free-form field) can
        # still be a well-formed request -- just not the same one.
        assert isinstance(decoded, Request)

    def test_wrong_magic_rejected_on_first_bytes(self):
        frame = encode_request(Request(op=Op.HEALTH, request_id=1))
        bad = bytearray(frame)
        bad[1] ^= 0xFF  # first magic byte inside the frame body
        try:
            request_assembler().feed(bytes(bad))
        except CorruptionError:
            return
        raise AssertionError("assembler accepted a bad magic")
