"""Behavioral suite for the serve daemon.

The load-bearing contract is **byte identity**: a ``compress`` response
is exactly the container the one-shot CLI path produces for the same
config (including ``--auto`` planned containers), and ``decompress``
inverts both.  The rest pins the admission-control statuses
(BAD_REQUEST / BUSY / QUOTA / DRAINING), the typed handling of corrupt
payloads and garbage streams, and the HTTP shim's status mapping.
"""

from __future__ import annotations

import json
import socket
import urllib.error
import urllib.request

import pytest

from repro.core.primacy import PrimacyCompressor
from repro.serve.daemon import ServeConfig
from repro.serve.protocol import (
    Op,
    Request,
    RequestConfig,
    ServeError,
    Status,
    response_assembler,
)

from tests.serve.conftest import BASE_CONFIG
from tests.serve.harness import ServerHarness, reference_compress

#: Request-side knobs that materialize to exactly ``BASE_CONFIG``.
RC = RequestConfig(chunk_bytes=BASE_CONFIG.chunk_bytes)


# -- the core contract: byte identity with the one-shot path ------------


def test_compress_is_byte_identical_to_one_shot(server, payload):
    with server.client() as client:
        container = client.compress(payload, config=RC)
    assert container == reference_compress(payload, BASE_CONFIG)
    assert PrimacyCompressor(BASE_CONFIG).decompress(container) == payload


def test_auto_compress_matches_planned_one_shot(server, payload):
    with server.client() as client:
        container = client.compress(payload, config=RC, auto=True)
    assert container == reference_compress(payload, BASE_CONFIG, auto=True)
    assert PrimacyCompressor(BASE_CONFIG).decompress(container) == payload


def test_decompress_round_trip(server, payload):
    with server.client() as client:
        container = client.compress(payload, config=RC)
        assert client.decompress(container) == payload


def test_single_chunk_payload_takes_serial_path(server):
    data = b"primacy" * 40  # far below one chunk
    with server.client() as client:
        container = client.compress(data, config=RC)
        assert client.decompress(container) == data
    assert container == reference_compress(data, BASE_CONFIG)


def test_empty_payload(server):
    with server.client() as client:
        container = client.compress(b"", config=RC)
        assert client.decompress(container) == b""


def test_many_requests_on_one_connection(server, payload):
    with server.client() as client:
        for _ in range(3):
            container = client.compress(payload, config=RC)
            assert client.decompress(container) == payload
            assert client.health()["status"] == "ok"


# -- typed failure handling --------------------------------------------


def test_corrupt_container_is_typed_corrupt(server, payload):
    with server.client() as client:
        container = bytearray(client.compress(payload, config=RC))
        container[len(container) // 2] ^= 0xFF
        with pytest.raises(ServeError) as err:
            client.decompress(bytes(container))
    assert err.value.status is Status.CORRUPT


def test_unknown_codec_is_bad_request(server, payload):
    with server.client() as client:
        with pytest.raises(ServeError) as err:
            client.compress(payload, config=RequestConfig(codec="nope"))
    assert err.value.status is Status.BAD_REQUEST


def test_garbage_stream_gets_typed_reply_then_hangup(server):
    host, port = server.address
    with socket.create_connection((host, port), timeout=10) as sock:
        sock.sendall(b"\x10NOTAFRAMEATALL??")
        assembler = response_assembler()
        frames: list[bytes] = []
        while not frames:
            data = sock.recv(65536)
            if not data:
                raise AssertionError("connection closed with no reply")
            frames.extend(assembler.feed(data))
        from repro.serve.protocol import decode_response

        response = decode_response(frames[0])
        assert response.status is Status.BAD_REQUEST
        # after the typed reply the server hangs up
        assert sock.recv(65536) == b""


# -- introspection ops --------------------------------------------------


def test_health_document(server):
    with server.client() as client:
        doc = client.health()
    assert doc["status"] == "ok"
    assert doc["workers"] >= 1
    assert doc["uptime_seconds"] >= 0


def test_stat_document_counts_requests(server, payload):
    with server.client() as client:
        client.compress(payload, config=RC)
        doc = client.stat()
    assert doc["server"]["acknowledged"] >= 1
    assert doc["server"]["acknowledged"] == doc["server"]["answered"]
    assert doc["server"]["inflight_requests"] == 0
    assert doc["server"]["bytes_in"] >= len(payload)
    assert "engine" in doc


# -- admission control (dedicated cheap servers) ------------------------


def _refusal(serve_config: ServeConfig, payload: bytes, **kwargs) -> ServeError:
    with ServerHarness(serve_config) as harness:
        with harness.client() as client:
            with pytest.raises(ServeError) as err:
                client.compress(payload, **kwargs)
    return err.value


def test_payload_over_server_cap_is_bad_request():
    err = _refusal(
        ServeConfig(workers=1, base=BASE_CONFIG, max_payload_bytes=1024),
        b"x" * 2048,
        config=RC,
    )
    assert err.status is Status.BAD_REQUEST


def test_inflight_request_ceiling_is_busy():
    err = _refusal(
        ServeConfig(workers=1, base=BASE_CONFIG, max_inflight_requests=0),
        b"x" * 64,
        config=RC,
    )
    assert err.status is Status.BUSY


def test_tenant_quota_is_typed_quota():
    config = ServeConfig(
        workers=1, base=BASE_CONFIG, quota_bps=1.0, quota_burst_bytes=16
    )
    err = _refusal(config, b"x" * 256, config=RC, tenant="acme")
    assert err.status is Status.QUOTA


def test_draining_server_refuses_new_work(payload):
    config = ServeConfig(workers=1, base=BASE_CONFIG)
    with ServerHarness(config) as harness:
        with harness.client() as client:
            client.compress(payload, config=RC)  # healthy before drain
            harness.run(harness.server.drain())
            with pytest.raises(ServeError) as err:
                client.compress(payload, config=RC)
            assert err.value.status is Status.DRAINING
            # introspection stays answerable while draining
            assert client.health()["status"] == "draining"


def test_stat_health_are_never_admission_gated():
    config = ServeConfig(workers=1, base=BASE_CONFIG, max_inflight_requests=0)
    with ServerHarness(config) as harness:
        with harness.client() as client:
            assert client.health()["status"] == "ok"
            assert client.stat()["server"]["acknowledged"] == 0


# -- HTTP shim ----------------------------------------------------------


def _http(server, method: str, path: str, body: bytes | None = None):
    host, port = server.address
    request = urllib.request.Request(
        f"http://{host}:{port}{path}", data=body, method=method
    )
    with urllib.request.urlopen(request, timeout=30) as reply:
        return reply.status, reply.read()


def test_http_compress_decompress_round_trip(server, payload):
    qs = f"?chunk_bytes={BASE_CONFIG.chunk_bytes}"
    status, container = _http(server, "POST", f"/compress{qs}", payload)
    assert status == 200
    assert container == reference_compress(payload, BASE_CONFIG)
    status, restored = _http(server, "POST", "/decompress", container)
    assert status == 200
    assert restored == payload


def test_http_health_and_stat(server):
    status, body = _http(server, "GET", "/health")
    assert status == 200
    assert json.loads(body)["status"] == "ok"
    status, body = _http(server, "GET", "/stat")
    assert status == 200
    assert "server" in json.loads(body)


def test_http_garbage_decompress_is_422(server):
    with pytest.raises(urllib.error.HTTPError) as err:
        _http(server, "POST", "/decompress", b"not a container")
    assert err.value.code == 422
    assert json.loads(err.value.read())["error"] == "CORRUPT"


def test_http_unknown_route_is_404(server):
    with pytest.raises(urllib.error.HTTPError) as err:
        _http(server, "GET", "/nope")
    assert err.value.code == 404


# -- config validation --------------------------------------------------


def test_serve_config_rejects_reuse_chains():
    from repro.core.idmap import IndexReusePolicy
    import dataclasses

    chained = dataclasses.replace(
        BASE_CONFIG, index_policy=IndexReusePolicy.FIRST_CHUNK
    )
    with pytest.raises(ValueError):
        ServeConfig(base=chained)


def test_request_id_is_echoed(server):
    with server.client() as client:
        request = Request(op=Op.HEALTH, request_id=941)
        response = client.request(request)
    assert response.request_id == 941
