"""Tests for the write/read performance models (Eqns 3-13)."""

from __future__ import annotations

import pytest

from repro.model import (
    ModelInputs,
    predict_base_read,
    predict_base_write,
    predict_compressed_read,
    predict_compressed_write,
)


def _inputs(**overrides) -> ModelInputs:
    defaults = dict(
        chunk_bytes=3e6,
        rho=8.0,
        network_bps=30e6,
        disk_write_bps=40e6,
        preconditioner_bps=200e6,
        compressor_bps=20e6,
        alpha1=0.25,
        alpha2=0.4,
        sigma_ho=0.1,
        sigma_lo=0.7,
    )
    defaults.update(overrides)
    return ModelInputs(**defaults)


class TestBaseCase:
    def test_eqn4_transfer(self):
        out = predict_base_write(_inputs())
        # (1 + rho) * C / theta = 9 * 3e6 / 30e6
        assert out.t_transfer == pytest.approx(0.9)

    def test_eqn5_write(self):
        out = predict_base_write(_inputs())
        # rho * C / mu_w = 8 * 3e6 / 40e6
        assert out.t_write == pytest.approx(0.6)

    def test_eqn6_total_and_eqn3_throughput(self):
        inp = _inputs()
        out = predict_base_write(inp)
        assert out.t_total == pytest.approx(1.5)
        assert out.throughput_mbps(inp) == pytest.approx(16.0)

    def test_base_read_mirrors_write(self):
        inp = _inputs(disk_read_bps=40e6)
        w = predict_base_write(inp)
        r = predict_base_read(inp)
        assert r.t_total == pytest.approx(w.t_total)


class TestCompressedWrite:
    def test_eqn7_to_10_stage_times(self):
        inp = _inputs()
        out = predict_compressed_write(inp)
        c = inp.chunk_bytes
        assert out.t_precondition1 == pytest.approx(c / 200e6)  # Eqn 7
        assert out.t_precondition2 == pytest.approx(0.75 * c / 200e6)  # Eqn 8
        assert out.t_compress1 == pytest.approx(0.25 * c / 20e6)  # Eqn 9
        assert out.t_compress2 == pytest.approx(0.4 * 0.75 * c / 20e6)  # Eqn 10

    def test_eqn11_transfer_scales_with_compressed_fraction(self):
        inp = _inputs()
        out = predict_compressed_write(inp)
        frac = out.extras["out_fraction"]
        expected = 0.25 * 0.1 + 0.4 * 0.75 * 0.7 + 0.6 * 0.75
        assert frac == pytest.approx(expected)
        assert out.t_transfer == pytest.approx(9 * 3e6 * frac / 30e6)

    def test_faithful_eq11_applies_sigma_to_raw(self):
        inp = _inputs()
        corrected = predict_compressed_write(inp, faithful_eq11=False)
        faithful = predict_compressed_write(inp, faithful_eq11=True)
        # Printed equation multiplies the raw remainder by sigma_lo < 1, so
        # it predicts smaller transfers.
        assert faithful.t_transfer < corrected.t_transfer

    def test_metadata_charged(self):
        light = predict_compressed_write(_inputs())
        heavy = predict_compressed_write(_inputs(metadata_bytes=1e5))
        assert heavy.t_transfer > light.t_transfer

    def test_compression_win_when_compute_is_fast(self):
        """Fast compressor + good ratio -> beats the null case (the paper's
        PRIMACY regime)."""
        inp = _inputs(compressor_bps=100e6, preconditioner_bps=1e9)
        assert (
            predict_compressed_write(inp).throughput_bps(inp)
            > predict_base_write(inp).throughput_bps(inp)
        )

    def test_compression_loss_when_compute_is_slow(self):
        """Slow compressor erases the transfer gain (the paper's bzlib2
        regime)."""
        inp = _inputs(compressor_bps=0.5e6, preconditioner_bps=1e9)
        assert (
            predict_compressed_write(inp).throughput_bps(inp)
            < predict_base_write(inp).throughput_bps(inp)
        )


class TestCompressedRead:
    def test_read_uses_read_path_parameters(self):
        inp = _inputs(disk_read_bps=400e6, decompressor_bps=80e6,
                      repreconditioner_bps=500e6)
        out = predict_compressed_read(inp)
        frac = out.extras["out_fraction"]
        assert out.t_write == pytest.approx(8 * 3e6 * frac / 400e6)
        assert out.t_compress1 == pytest.approx(0.25 * 3e6 / 80e6)

    def test_vanilla_decompression_hurts_reads(self):
        """Sec IV-D: whole-chunk zlib decompression makes reads slower than
        the null case when decompression is not fast enough."""
        inp = _inputs(
            alpha1=1.0,
            alpha2=0.0,
            sigma_ho=0.85,
            network_bps=250e6,
            disk_read_bps=340e6,
            decompressor_bps=80e6,
            preconditioner_bps=1e12,
            repreconditioner_bps=1e12,
        )
        assert (
            predict_compressed_read(inp).throughput_bps(inp)
            < predict_base_read(inp).throughput_bps(inp)
        )
