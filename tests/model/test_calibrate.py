"""Tests for model calibration from measured runs."""

from __future__ import annotations

import pytest

from repro.compressors import evaluate_codec, get_codec
from repro.core import PrimacyCompressor, PrimacyConfig
from repro.model import (
    calibrate_from_metrics,
    calibrate_from_stats,
    predict_compressed_write,
)

_MACHINE = dict(
    chunk_bytes=32 * 1024.0,
    rho=8.0,
    network_bps=10e6,
    disk_write_bps=10e6,
)


class TestCalibrateFromStats:
    def test_parameters_transfer(self, smooth_doubles):
        compressor = PrimacyCompressor(PrimacyConfig(chunk_bytes=32 * 1024))
        _, stats = compressor.compress(smooth_doubles)
        inputs = calibrate_from_stats(stats, **_MACHINE)
        assert inputs.alpha1 == pytest.approx(stats.alpha1)
        assert inputs.alpha2 == pytest.approx(stats.alpha2)
        assert inputs.sigma_ho == pytest.approx(stats.sigma_ho)
        assert inputs.sigma_lo == pytest.approx(stats.sigma_lo)
        assert inputs.preconditioner_bps == pytest.approx(
            stats.preconditioner_mbps * 1e6
        )

    def test_model_size_prediction_close_to_actual(self, obs_temp_small):
        """The model's compressed-fraction must track the real container."""
        compressor = PrimacyCompressor(PrimacyConfig(chunk_bytes=32 * 1024))
        out, stats = compressor.compress(obs_temp_small)
        inputs = calibrate_from_stats(stats, **_MACHINE)
        predicted = predict_compressed_write(inputs).extras["out_fraction"]
        actual = len(out) / len(obs_temp_small)
        assert predicted == pytest.approx(actual, rel=0.15)


class TestCalibrateFromMetrics:
    def test_vanilla_is_single_stage(self, smooth_doubles):
        metrics = evaluate_codec(get_codec("pyzlib"), smooth_doubles)
        inputs = calibrate_from_metrics(metrics, **_MACHINE)
        assert inputs.alpha1 == 1.0
        assert inputs.alpha2 == 0.0
        assert inputs.sigma_ho == pytest.approx(metrics.sigma)
        assert inputs.preconditioner_bps == float("inf")
        # No preconditioner time in the prediction.
        out = predict_compressed_write(inputs)
        assert out.t_precondition1 == 0.0
        assert out.t_precondition2 == 0.0
