"""Tests for model parameter dataclasses (Tables I/II)."""

from __future__ import annotations

import pytest

from repro.model import ModelInputs, ModelOutputs


def _inputs(**overrides) -> ModelInputs:
    defaults = dict(
        chunk_bytes=3e6,
        rho=8.0,
        network_bps=34e6,
        disk_write_bps=34e6,
        preconditioner_bps=400e6,
        compressor_bps=18e6,
        alpha1=0.25,
        alpha2=0.3,
        sigma_ho=0.2,
        sigma_lo=0.8,
    )
    defaults.update(overrides)
    return ModelInputs(**defaults)


class TestModelInputs:
    def test_validation_positive(self):
        with pytest.raises(ValueError):
            _inputs(chunk_bytes=0)
        with pytest.raises(ValueError):
            _inputs(network_bps=-1)

    def test_validation_fractions(self):
        with pytest.raises(ValueError):
            _inputs(alpha1=1.5)
        with pytest.raises(ValueError):
            _inputs(alpha2=-0.1)

    def test_read_fallbacks(self):
        inp = _inputs()
        assert inp.read_disk_bps == inp.disk_write_bps
        assert inp.read_decompressor_bps == inp.compressor_bps
        assert inp.read_repreconditioner_bps == inp.preconditioner_bps

    def test_read_overrides(self):
        inp = _inputs(disk_read_bps=100e6, decompressor_bps=50e6)
        assert inp.read_disk_bps == 100e6
        assert inp.read_decompressor_bps == 50e6

    def test_compressed_fraction_formula(self):
        inp = _inputs(alpha1=0.25, alpha2=0.5, sigma_ho=0.1, sigma_lo=0.5,
                      metadata_bytes=0.0)
        expected = 0.25 * 0.1 + 0.5 * 0.75 * 0.5 + 0.5 * 0.75
        assert inp.compressed_fraction == pytest.approx(expected)

    def test_metadata_adds_to_fraction(self):
        base = _inputs(metadata_bytes=0.0).compressed_fraction
        heavy = _inputs(metadata_bytes=3e5).compressed_fraction
        assert heavy == pytest.approx(base + 0.1)


class TestModelOutputs:
    def test_t_total_is_sum(self):
        out = ModelOutputs(
            t_precondition1=1.0,
            t_precondition2=2.0,
            t_compress1=3.0,
            t_compress2=4.0,
            t_transfer=5.0,
            t_write=6.0,
        )
        assert out.t_total == 21.0

    def test_throughput_eqn3(self):
        inp = _inputs()
        out = ModelOutputs(t_write=1.5)
        # tau = rho * C / t_total = 8 * 3e6 / 1.5
        assert out.throughput_bps(inp) == pytest.approx(16e6)
        assert out.throughput_mbps(inp) == pytest.approx(16.0)

    def test_zero_time_infinite_throughput(self):
        assert ModelOutputs().throughput_bps(_inputs()) == float("inf")
