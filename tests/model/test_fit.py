"""Tests for machine-parameter fitting from observed runs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.iosim import NullStrategy, StagingEnvironment, StagingSimulator
from repro.model import (
    fit_machine,
    fit_model_inputs,
    fit_rate,
    predict_base_write,
)


class TestFitRate:
    def test_exact_line(self):
        rate = 5e6
        samples = [(n, n / rate) for n in (1e6, 2e6, 8e6)]
        assert fit_rate(samples) == pytest.approx(rate)

    def test_noisy_samples(self):
        rng = np.random.default_rng(0)
        rate = 3e6
        samples = [
            (n, n / rate * (1 + 0.05 * rng.standard_normal()))
            for n in rng.uniform(1e5, 1e7, 50)
        ]
        assert fit_rate(samples) == pytest.approx(rate, rel=0.05)

    def test_zero_time_is_infinite_rate(self):
        assert fit_rate([(100.0, 0.0)]) == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_rate([])
        with pytest.raises(ValueError):
            fit_rate([(-1.0, 1.0)])


class TestFitMachine:
    @pytest.fixture(scope="class")
    def env(self):
        return StagingEnvironment(
            rho=8,
            network_write_bps=12e6,
            network_read_bps=40e6,
            disk_write_bps=20e6,
            disk_read_bps=60e6,
        )

    @pytest.fixture(scope="class")
    def observations(self, env):
        rng = np.random.default_rng(1)
        sim = StagingSimulator(env)
        results = []
        for n in (16384, 32768, 65536):
            data = rng.normal(0, 1, n).astype("<f8").tobytes()
            results.append(sim.simulate_write(data, NullStrategy()))
        return results

    def test_recovers_environment_rates(self, env, observations):
        fit = fit_machine(observations)
        assert fit.network_bps == pytest.approx(env.network_write_bps, rel=0.01)
        assert fit.disk_bps == pytest.approx(env.disk_write_bps, rel=0.01)
        assert fit.compute_bps == float("inf")  # null strategy: no compute
        assert fit.residual < 0.01

    def test_fitted_inputs_predict_observed_throughput(self, env, observations):
        inputs = fit_model_inputs(
            observations,
            chunk_bytes=observations[-1].original_bytes / env.rho,
            rho=env.rho,
        )
        predicted = predict_base_write(inputs).throughput_bps(inputs)
        assert predicted == pytest.approx(
            observations[-1].throughput_bps, rel=0.02
        )

    def test_empty_observations_rejected(self):
        with pytest.raises(ValueError):
            fit_machine([])
