"""Tests for the parallel chunk compressor."""

from __future__ import annotations

import pytest

from repro.core import IndexReusePolicy, PrimacyCompressor, PrimacyConfig
from repro.datasets import generate_bytes
from repro.parallel import ParallelCompressor


@pytest.fixture(scope="module")
def payload() -> bytes:
    return generate_bytes("obs_temp", 24000, seed=6) + b"zz"


class TestParallelCompressor:
    def test_output_identical_to_serial(self, payload):
        cfg = PrimacyConfig(chunk_bytes=16 * 1024)
        serial_out, serial_stats = PrimacyCompressor(cfg).compress(payload)
        parallel_out, parallel_stats = ParallelCompressor(
            cfg, workers=2
        ).compress(payload)
        assert parallel_out == serial_out
        assert parallel_stats.compression_ratio == pytest.approx(
            serial_stats.compression_ratio
        )

    def test_decompressible_by_serial(self, payload):
        cfg = PrimacyConfig(chunk_bytes=16 * 1024)
        out, _ = ParallelCompressor(cfg, workers=2).compress(payload)
        assert PrimacyCompressor(cfg).decompress(out) == payload

    def test_single_chunk_runs_inline(self, payload):
        cfg = PrimacyConfig(chunk_bytes=1 << 20)
        out, stats = ParallelCompressor(cfg, workers=4).compress(payload)
        assert len(stats.chunks) == 1
        assert PrimacyCompressor(cfg).decompress(out) == payload

    def test_one_worker_runs_inline(self, payload):
        cfg = PrimacyConfig(chunk_bytes=8 * 1024)
        out, _ = ParallelCompressor(cfg, workers=1).compress(payload)
        assert PrimacyCompressor(cfg).decompress(out) == payload

    def test_empty_input(self):
        cfg = PrimacyConfig(chunk_bytes=8 * 1024)
        out, stats = ParallelCompressor(cfg).compress(b"")
        assert PrimacyCompressor(cfg).decompress(out) == b""
        assert stats.original_bytes == 0

    def test_rejects_reuse_policies(self):
        for policy in (IndexReusePolicy.FIRST_CHUNK, IndexReusePolicy.CORRELATED):
            with pytest.raises(ValueError, match="PER_CHUNK"):
                ParallelCompressor(
                    PrimacyConfig(index_policy=policy)
                )

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            ParallelCompressor(workers=0)

    def test_stats_aggregate_all_chunks(self, payload):
        cfg = PrimacyConfig(chunk_bytes=8 * 1024)
        _, stats = ParallelCompressor(cfg, workers=2).compress(payload)
        usable = len(payload) - len(payload) % 8
        assert sum(c.n_values * 8 for c in stats.chunks) == usable
