"""Tests for the persistent shared-memory parallel engine.

Identity, not timing: this suite asserts that every parallel path
(engine fan-out, parallel decompression, pipelined storage and
checkpoint writes) produces output byte-identical to the serial
pipeline.  Speedups are a benchmark concern
(``benchmarks/bench_parallel_engine.py``), not a test concern -- CI
hosts may have a single core.
"""

from __future__ import annotations

import io
import os
import time

import numpy as np
import pytest
from multiprocessing.shared_memory import SharedMemory

from repro.core import IndexReusePolicy, PrimacyCompressor, PrimacyConfig
from repro.core.linearize import Linearization
from repro.datasets import generate_bytes
from repro.parallel import (
    EngineError,
    ParallelCompressor,
    ParallelDecompressor,
    ParallelEngine,
)
from repro.parallel.engine import KIND_COMPRESS, KIND_DECOMPRESS


@pytest.fixture(scope="module")
def payload() -> bytes:
    # ~72 KB: with 16 KiB chunks that is four shared-memory-sized chunks
    # plus a sub-threshold partial that rides the pickle path.
    return generate_bytes("obs_temp", 72000, seed=11) + b"xy"


@pytest.fixture(scope="module")
def grid_payload() -> bytes:
    return generate_bytes("obs_temp", 24000, seed=7) + b"z"


_SERIAL_MEMO: dict[tuple, bytes] = {}


def _serial_reference(config: PrimacyConfig, data: bytes) -> bytes:
    key = (config.codec, config.linearization, config.checksum, len(data))
    if key not in _SERIAL_MEMO:
        _SERIAL_MEMO[key] = PrimacyCompressor(config).compress(data)[0]
    return _SERIAL_MEMO[key]


class TestByteIdentityGrid:
    """Parallel output must equal serial output bit for bit, and round
    trip through the parallel decompressor, across the codec /
    linearization / checksum / worker-count grid."""

    @pytest.mark.parametrize("codec", ["pyzlib", "pylzo", "huffman"])
    @pytest.mark.parametrize(
        "linearization", [Linearization.COLUMN, Linearization.ROW]
    )
    @pytest.mark.parametrize("checksum", [True, False])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_identity_and_roundtrip(
        self, grid_payload, codec, linearization, checksum, workers
    ):
        cfg = PrimacyConfig(
            codec=codec,
            chunk_bytes=8 * 1024,
            linearization=linearization,
            checksum=checksum,
        )
        serial = _serial_reference(cfg, grid_payload)
        with ParallelCompressor(cfg, workers=workers) as comp:
            out, stats = comp.compress(grid_payload)
        assert out == serial
        assert stats.original_bytes == len(grid_payload)
        with ParallelDecompressor(cfg, workers=workers) as dec:
            assert dec.decompress(out) == grid_payload


class TestEnginePersistence:
    def test_pool_survives_across_compress_calls(self, payload):
        cfg = PrimacyConfig(chunk_bytes=16 * 1024)
        serial = PrimacyCompressor(cfg).compress(payload)[0]
        with ParallelCompressor(cfg, workers=2) as comp:
            assert comp.compress(payload)[0] == serial
            pids = sorted(p.pid for p in comp.engine._procs)
            tasks_after_first = comp.engine.stats.tasks
            assert comp.compress(payload)[0] == serial
            assert sorted(p.pid for p in comp.engine._procs) == pids
            assert comp.engine.stats.tasks > tasks_after_first

    def test_engine_restarts_after_close(self, payload):
        cfg = PrimacyConfig(chunk_bytes=16 * 1024)
        serial = PrimacyCompressor(cfg).compress(payload)[0]
        comp = ParallelCompressor(cfg, workers=2)
        try:
            assert comp.compress(payload)[0] == serial
            comp.engine.close()
            assert not comp.engine.started
            assert comp.compress(payload)[0] == serial
            assert comp.engine.started
        finally:
            comp.close()

    def test_shared_engine_spans_compress_and_decompress(self, payload):
        cfg = PrimacyConfig(chunk_bytes=16 * 1024)
        with ParallelEngine(cfg, workers=2) as engine:
            comp = ParallelCompressor(engine=engine)
            dec = ParallelDecompressor(engine=engine)
            out, _ = comp.compress(payload)
            assert dec.decompress(out) == payload
            # Shared engines are not closed by their borrowers.
            comp.close()
            dec.close()
            assert engine.started

    def test_compress_iter_matches_compress(self, payload):
        cfg = PrimacyConfig(chunk_bytes=16 * 1024)
        with ParallelCompressor(cfg, workers=2) as comp:
            whole, _ = comp.compress(payload)
            records = [rec for rec, _ in comp.compress_iter(payload)]
        serial_records = []
        serial = PrimacyCompressor(cfg)
        chunks, _ = serial._chunker.split(payload)
        for chunk in chunks:
            serial_records.append(serial.compress_chunk(chunk.data)[0])
        assert records == serial_records
        # Every record appears in the container, in order.
        pos = 0
        for rec in records:
            found = whole.find(rec, pos)
            assert found >= 0
            pos = found + len(rec)


class TestZeroCopyInputs:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_buffer_types_compress_identically(self, payload, workers):
        cfg = PrimacyConfig(chunk_bytes=16 * 1024)
        arr = np.frombuffer(payload[: len(payload) - len(payload) % 8], "<f8")
        with ParallelCompressor(cfg, workers=workers) as comp:
            from_bytes = comp.compress(bytes(arr.tobytes()))[0]
            from_bytearray = comp.compress(bytearray(arr.tobytes()))[0]
            from_view = comp.compress(memoryview(arr.tobytes()))[0]
            from_array = comp.compress(arr)[0]
        assert from_bytes == from_bytearray == from_view == from_array

    def test_chunker_yields_views_not_copies(self, payload):
        from repro.core.chunking import Chunker

        chunks, tail = Chunker(16 * 1024, 8).split(payload)
        assert all(isinstance(c.data, memoryview) for c in chunks)
        joined = b"".join(bytes(c.data) for c in chunks) + tail
        assert joined == payload


class TestEngineInternals:
    def test_mixed_payload_sizes_use_both_transports(self, payload):
        cfg = PrimacyConfig(chunk_bytes=16 * 1024)
        with ParallelCompressor(cfg, workers=2) as comp:
            comp.compress(payload)
            stats = comp.engine.stats
        # Full chunks (16 KiB) go through shared memory, the partial
        # tail chunk through the pickle path.
        assert stats.shm_bytes >= 4 * 16 * 1024
        assert stats.pickled_bytes > 0
        assert stats.result_bytes > 0
        assert stats.worker_seconds > 0.0
        summary = stats.summary()
        assert summary["tasks"] == stats.tasks
        assert 0.0 <= summary["busy_fraction"]

    def test_pop_supports_out_of_order_collection(self, payload):
        cfg = PrimacyConfig(chunk_bytes=16 * 1024)
        chunk = payload[: 16 * 1024]
        expected = PrimacyCompressor(cfg).compress_chunk(chunk)[0]
        with ParallelEngine(cfg, workers=2) as engine:
            ids = [engine.submit(KIND_COMPRESS, chunk) for _ in range(4)]
            for task_id in reversed(ids):
                record, _stats = engine.pop(task_id)
                assert record == expected

    def test_map_ordered_respects_window(self, payload):
        cfg = PrimacyConfig(chunk_bytes=16 * 1024)
        chunk = payload[: 16 * 1024]
        with ParallelEngine(cfg, workers=2, max_pending=2) as engine:
            for _ in engine.map_ordered(KIND_COMPRESS, [chunk] * 6):
                assert len(engine._pending) + len(engine._done) <= 2

    def test_segments_are_recycled(self, payload):
        cfg = PrimacyConfig(chunk_bytes=16 * 1024)
        chunk = payload[: 16 * 1024]
        with ParallelEngine(cfg, workers=2, max_pending=2) as engine:
            for _ in engine.map_ordered(KIND_COMPRESS, [chunk] * 8):
                pass
            # A steady stream of equal-size chunks needs at most
            # max_pending + 1 segments, ever.
            assert len(engine._all_shm) <= engine.max_pending + 1

    def test_worker_error_propagates_typed(self):
        """Corrupt input re-raises the worker's typed CodecError, and the
        pool survives the poisoned task."""
        from repro.compressors import CodecError

        cfg = PrimacyConfig(chunk_bytes=16 * 1024)
        with ParallelEngine(cfg, workers=2) as engine:
            task_id = engine.submit(KIND_DECOMPRESS, b"\xff" * (20 * 1024))
            with pytest.raises(CodecError):
                engine.pop(task_id)
            # The pool survives a poisoned task.
            chunk = generate_bytes("obs_temp", 16 * 1024, seed=1)
            record, _ = engine.pop(engine.submit(KIND_COMPRESS, chunk))
            assert record == PrimacyCompressor(cfg).compress_chunk(chunk)[0]

    def test_worker_non_codec_error_raises_engine_error(self):
        """Failures that are not data corruption surface as EngineError."""
        with ParallelEngine(PrimacyConfig(), workers=1) as engine:
            task_id = engine.submit("no-such-kind", b"x" * 8)
            with pytest.raises(EngineError, match="worker failed"):
                engine.pop(task_id)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ParallelEngine(workers=0)
        with pytest.raises(ValueError):
            ParallelEngine(workers=2, max_pending=0)


class TestCrashSafety:
    def test_close_with_inflight_tasks_releases_everything(self, payload):
        cfg = PrimacyConfig(chunk_bytes=16 * 1024)
        engine = ParallelEngine(cfg, workers=2, max_pending=8)
        chunk = payload[: 16 * 1024]
        for _ in range(6):
            engine.submit(KIND_COMPRESS, chunk)
        names = [shm.name for shm in engine._all_shm]
        assert names
        t0 = time.monotonic()
        engine.close()
        assert time.monotonic() - t0 < 30.0  # no deadlock
        assert not engine.started
        assert engine._all_shm == []
        for name in names:
            with pytest.raises(FileNotFoundError):
                SharedMemory(name=name)  # unlink really ran
        engine.close()  # idempotent

    def test_fork_safety(self, payload):
        cfg = PrimacyConfig(chunk_bytes=16 * 1024)
        serial = PrimacyCompressor(cfg).compress(payload)[0]
        with ParallelCompressor(cfg, workers=2) as comp:
            assert comp.compress(payload)[0] == serial  # pool is live
            pid = os.fork()
            if pid == 0:
                # Child: the inherited pool belongs to the parent; the
                # engine must detect the fork and rebuild its own.
                status = 3
                try:
                    ok = comp.compress(payload)[0] == serial
                    comp.engine.close()
                    status = 0 if ok else 1
                except BaseException:
                    status = 2
                finally:
                    os._exit(status)
            _, wait_status = os.waitpid(pid, 0)
            assert os.WIFEXITED(wait_status)
            assert os.WEXITSTATUS(wait_status) == 0
            # The parent's pool is untouched by the child's rebuild.
            assert comp.compress(payload)[0] == serial

    def test_pool_start_failure_falls_back_inline(self, payload):
        cfg = PrimacyConfig(chunk_bytes=16 * 1024)
        serial = PrimacyCompressor(cfg).compress(payload)[0]

        class BrokenCtx:
            @staticmethod
            def get_start_method():
                return "fork"

            @staticmethod
            def Queue():
                raise OSError("no queues today")

        engine = ParallelEngine(cfg, workers=2)
        engine._ctx = BrokenCtx()
        try:
            with pytest.warns(RuntimeWarning, match="falling back"):
                out, _ = ParallelCompressor(engine=engine).compress(payload)
            assert out == serial
            assert engine.stats.inline_tasks > 0
        finally:
            engine.close()


class TestParallelDecompressor:
    def test_serial_fallback_for_reuse_chains(self, payload):
        cfg = PrimacyConfig(
            chunk_bytes=16 * 1024,
            index_policy=IndexReusePolicy.FIRST_CHUNK,
        )
        container = PrimacyCompressor(cfg).compress(payload)[0]
        with ParallelDecompressor(workers=2) as dec:
            assert dec.decompress(container) == payload
            # The chain forced the serial path: no pool was started.
            assert not dec.engine.started

    def test_header_drives_config_not_instance(self, payload):
        # A decompressor built with the *default* config must still
        # decode a container produced with a different codec/linearization.
        cfg = PrimacyConfig(
            codec="huffman",
            chunk_bytes=16 * 1024,
            linearization=Linearization.ROW,
            checksum=False,
        )
        container = PrimacyCompressor(cfg).compress(payload)[0]
        with ParallelDecompressor(workers=2) as dec:
            assert dec.decompress(container) == payload

    def test_empty_and_tiny_inputs(self):
        cfg = PrimacyConfig(chunk_bytes=16 * 1024)
        for data in (b"", b"\x01", os.urandom(64)):
            container = PrimacyCompressor(cfg).compress(data)[0]
            with ParallelDecompressor(workers=2) as dec:
                assert dec.decompress(container) == data


class TestPipelinedWriters:
    def test_file_writer_byte_identical_to_serial(self, payload):
        from repro.storage.reader import PrimacyFileReader
        from repro.storage.writer import PrimacyFileWriter

        cfg = PrimacyConfig(chunk_bytes=16 * 1024)
        serial_buf, engine_buf = io.BytesIO(), io.BytesIO()
        with PrimacyFileWriter(serial_buf, cfg) as writer:
            for i in range(0, len(payload), 7919):  # odd-sized writes
                writer.write(payload[i : i + 7919])
            serial_stats = writer.stats
        with PrimacyFileWriter(engine_buf, cfg, workers=2) as writer:
            for i in range(0, len(payload), 7919):
                writer.write(payload[i : i + 7919])
            engine_stats = writer.stats
        assert engine_buf.getvalue() == serial_buf.getvalue()
        # Timing fields differ run to run; every size/count must not.
        import dataclasses

        def sizes(stats):
            return [
                dataclasses.replace(c, prec_seconds=0.0, codec_seconds=0.0)
                for c in stats.chunks
            ]

        assert sizes(engine_stats) == sizes(serial_stats)
        assert engine_stats.original_bytes == serial_stats.original_bytes
        assert engine_stats.container_bytes == serial_stats.container_bytes
        reader = PrimacyFileReader(io.BytesIO(engine_buf.getvalue()))
        assert reader.read_all() == payload

    def test_file_writer_rejects_reuse_policy_pipelining(self):
        from repro.storage.writer import PrimacyFileWriter

        cfg = PrimacyConfig(index_policy=IndexReusePolicy.FIRST_CHUNK)
        with pytest.raises(ValueError, match="PER_CHUNK"):
            PrimacyFileWriter(io.BytesIO(), cfg, workers=2)

    def test_checkpoint_writer_byte_identical_to_serial(self):
        from repro.checkpoint.manager import CheckpointReader, CheckpointWriter

        cfg = PrimacyConfig(chunk_bytes=8 * 1024)
        rng = np.random.default_rng(5)
        temp = (280 + np.cumsum(rng.normal(0, 0.02, 4000))).astype("<f8")
        rank = np.arange(3000, dtype="<i4") % 97

        def write_all(buf, **kwargs):
            with CheckpointWriter(buf, cfg, **kwargs) as writer:
                for step in (0, 10):
                    writer.write_step(step, {"temp": temp, "rank": rank})

        serial_buf, parallel_buf = io.BytesIO(), io.BytesIO()
        write_all(serial_buf)
        write_all(parallel_buf, workers=2)
        assert parallel_buf.getvalue() == serial_buf.getvalue()

        reader = CheckpointReader(io.BytesIO(parallel_buf.getvalue()))
        assert reader.steps() == [0, 10]
        np.testing.assert_array_equal(reader.read(10, "temp"), temp)
        np.testing.assert_array_equal(reader.read(0, "rank"), rank)
