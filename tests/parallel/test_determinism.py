"""Archive determinism: parallelism must never change the bytes.

The paper's pipeline is deterministic; so is the reproduction's -- and
the parallel engine fans chunks out but reassembles them in submit
order, so the same input with the same worker count must produce a
byte-identical archive every run, and the serial path must agree with
every parallel width.
"""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.core.primacy import PrimacyCompressor, PrimacyConfig
from repro.parallel import ParallelCompressor, ParallelDecompressor
from repro.storage import PrimacyFileWriter

CFG = PrimacyConfig(chunk_bytes=16 * 1024)


@pytest.fixture(scope="module")
def payload() -> bytes:
    rng = np.random.default_rng(97)
    smooth = np.cumsum(rng.normal(size=40 * 1024))
    return smooth.astype("<f8").tobytes() + rng.bytes(100)  # ragged tail


class TestCompressDeterminism:
    def test_three_runs_are_byte_identical(self, payload):
        archives = []
        for _ in range(3):
            with ParallelCompressor(CFG, workers=2) as comp:
                out, _ = comp.compress(payload)
            archives.append(out)
        assert archives[0] == archives[1] == archives[2]

    def test_parallel_matches_serial_any_width(self, payload):
        serial, _ = PrimacyCompressor(CFG).compress(payload)
        for workers in (1, 2, 3):
            with ParallelCompressor(CFG, workers=workers) as comp:
                out, _ = comp.compress(payload)
            assert out == serial, f"workers={workers} diverged from serial"

    def test_prif_writer_deterministic_across_runs(self, payload):
        blobs = []
        for _ in range(3):
            buf = io.BytesIO()
            with PrimacyFileWriter(buf, CFG, workers=2) as writer:
                writer.write(payload)
            blobs.append(buf.getvalue())
        assert blobs[0] == blobs[1] == blobs[2]

        serial_buf = io.BytesIO()
        with PrimacyFileWriter(serial_buf, CFG) as writer:
            writer.write(payload)
        assert serial_buf.getvalue() == blobs[0]


class TestDecompressDeterminism:
    def test_serial_and_parallel_decode_agree(self, payload):
        archive, _ = PrimacyCompressor(CFG).compress(payload)
        serial = PrimacyCompressor(CFG).decompress(archive)
        with ParallelDecompressor(workers=2) as dec:
            parallel = dec.decompress(archive)
        assert serial == parallel == payload
