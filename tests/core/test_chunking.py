"""Tests for the chunker."""

from __future__ import annotations

import pytest

from repro.core.chunking import Chunker, DEFAULT_CHUNK_BYTES


class TestChunker:
    def test_default_is_three_megabytes(self):
        assert DEFAULT_CHUNK_BYTES == 3 * 1024 * 1024
        assert Chunker().chunk_bytes == DEFAULT_CHUNK_BYTES

    def test_even_split(self):
        chunker = Chunker(chunk_bytes=64, word_bytes=8)
        chunks, tail = chunker.split(b"\x00" * 192)
        assert [len(c.data) for c in chunks] == [64, 64, 64]
        assert tail == b""
        assert [c.offset for c in chunks] == [0, 64, 128]
        assert [c.index for c in chunks] == [0, 1, 2]

    def test_ragged_last_chunk(self):
        chunker = Chunker(chunk_bytes=64, word_bytes=8)
        chunks, tail = chunker.split(b"\x01" * 100)
        assert [len(c.data) for c in chunks] == [64, 32]
        assert tail == b"\x01" * 4

    def test_tail_only(self):
        chunker = Chunker(chunk_bytes=64, word_bytes=8)
        chunks, tail = chunker.split(b"abc")
        assert chunks == []
        assert tail == b"abc"

    def test_empty(self):
        chunks, tail = Chunker(64, 8).split(b"")
        assert chunks == [] and tail == b""

    def test_chunk_size_rounded_to_words(self):
        chunker = Chunker(chunk_bytes=70, word_bytes=8)
        assert chunker.chunk_bytes == 64

    def test_n_chunks(self):
        chunker = Chunker(chunk_bytes=64, word_bytes=8)
        assert chunker.n_chunks(0) == 0
        assert chunker.n_chunks(64) == 1
        assert chunker.n_chunks(65) == 1  # the odd byte is tail, not a chunk
        assert chunker.n_chunks(72) == 2
        assert chunker.n_chunks(128) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            Chunker(chunk_bytes=4, word_bytes=8)
        with pytest.raises(ValueError):
            Chunker(chunk_bytes=64, word_bytes=0)

    def test_chunks_reassemble(self):
        data = bytes(range(256)) * 5
        chunker = Chunker(chunk_bytes=96, word_bytes=8)
        chunks, tail = chunker.split(data)
        assert b"".join(c.data for c in chunks) + tail == data
