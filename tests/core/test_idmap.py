"""Tests for frequency analysis and the ID mapping."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors import CodecError
from repro.core.idmap import FrequencyIndex, IdMapper


def _high_matrix(seqs: list[int]) -> np.ndarray:
    """Build an N x 2 high matrix from 16-bit sequence values."""
    arr = np.asarray(seqs, dtype=np.uint32)
    return np.column_stack(
        [(arr >> 8).astype(np.uint8), (arr & 0xFF).astype(np.uint8)]
    )


class TestFrequencyAnalysis:
    def test_sequences_packing(self):
        mapper = IdMapper(seq_bytes=2)
        high = _high_matrix([0x3FF0, 0x0001, 0xFFFF])
        assert mapper.sequences(high).tolist() == [0x3FF0, 0x0001, 0xFFFF]

    def test_frequencies_histogram(self):
        mapper = IdMapper(seq_bytes=2)
        high = _high_matrix([5, 5, 5, 9, 9, 100])
        freq = mapper.frequencies(mapper.sequences(high))
        assert freq[5] == 3 and freq[9] == 2 and freq[100] == 1
        assert freq.sum() == 6

    def test_most_frequent_gets_id_zero(self):
        mapper = IdMapper(seq_bytes=2)
        high = _high_matrix([7] * 10 + [3] * 5 + [9] * 1)
        index = mapper.build_index(high)
        assert index.values.tolist() == [7, 3, 9]

    def test_frequency_ties_break_by_ascending_sequence(self):
        mapper = IdMapper(seq_bytes=2)
        high = _high_matrix([300, 200, 100] * 4)  # all equal frequency
        index = mapper.build_index(high)
        assert index.values.tolist() == [100, 200, 300]

    def test_index_covers_exactly_present_values(self):
        mapper = IdMapper(seq_bytes=2)
        high = _high_matrix([1, 2, 2, 3])
        index = mapper.build_index(high)
        assert set(index.values.tolist()) == {1, 2, 3}


class TestMapping:
    def test_apply_invert_roundtrip(self):
        rng = np.random.default_rng(0)
        mapper = IdMapper(seq_bytes=2)
        high = rng.integers(0, 256, (5000, 2), dtype=np.uint8)
        index = mapper.build_index(high)
        ids, used = mapper.apply(high, index)
        assert used is index  # complete index: no extension
        assert np.array_equal(mapper.invert(ids, index), high)

    def test_mapping_is_bijective(self):
        mapper = IdMapper(seq_bytes=2)
        high = _high_matrix([10, 20, 10, 30, 20, 10])
        index = mapper.build_index(high)
        ids, _ = mapper.apply(high, index)
        id_vals = (ids[:, 0].astype(int) << 8) | ids[:, 1]
        # Same sequence -> same ID; different -> different.
        assert id_vals[0] == id_vals[2] == id_vals[5]
        assert len({id_vals[0], id_vals[1], id_vals[3]}) == 3

    def test_ids_concentrate_near_zero(self):
        """The point of PRIMACY: high byte of most IDs is zero."""
        rng = np.random.default_rng(1)
        seqs = rng.zipf(1.5, 20000).clip(0, 1800).astype(np.uint32)
        mapper = IdMapper(seq_bytes=2)
        high = _high_matrix(seqs.tolist())
        index = mapper.build_index(high)
        ids, _ = mapper.apply(high, index)
        assert (ids[:, 0] == 0).mean() > 0.9

    def test_extension_path(self):
        mapper = IdMapper(seq_bytes=2)
        base = mapper.build_index(_high_matrix([1, 1, 2]))
        high = _high_matrix([1, 2, 99, 50, 99])
        ids, used = mapper.apply(high, base)
        assert used.n_unique == 4
        # Extensions append after existing IDs, ascending.
        assert used.values.tolist() == [1, 2, 50, 99]
        assert np.array_equal(mapper.invert(ids, used), high)

    def test_invert_rejects_out_of_range_id(self):
        mapper = IdMapper(seq_bytes=2)
        index = mapper.build_index(_high_matrix([1, 2]))
        bad = np.array([[0, 7]], dtype=np.uint8)  # ID 7 > n_unique
        with pytest.raises(CodecError):
            mapper.invert(bad, index)

    def test_seq_bytes_one(self):
        mapper = IdMapper(seq_bytes=1)
        high = np.array([[3], [3], [5]], dtype=np.uint8)
        index = mapper.build_index(high)
        ids, _ = mapper.apply(high, index)
        assert np.array_equal(mapper.invert(ids, index), high)

    def test_seq_bytes_validation(self):
        with pytest.raises(ValueError):
            IdMapper(seq_bytes=0)
        with pytest.raises(ValueError):
            IdMapper(seq_bytes=4)

    @given(st.lists(st.integers(0, 0xFFFF), min_size=1, max_size=500))
    @settings(max_examples=50, deadline=None)
    def test_property_roundtrip(self, seqs):
        mapper = IdMapper(seq_bytes=2)
        high = _high_matrix(seqs)
        index = mapper.build_index(high)
        ids, _ = mapper.apply(high, index)
        assert np.array_equal(mapper.invert(ids, index), high)


class TestIndexSerialization:
    def test_roundtrip(self):
        index = FrequencyIndex(
            values=np.array([100, 5, 65535], dtype=np.uint32), seq_bytes=2
        )
        blob = index.serialize()
        restored, pos = FrequencyIndex.deserialize(blob)
        assert pos == len(blob)
        assert restored.values.tolist() == [100, 5, 65535]
        assert restored.seq_bytes == 2

    def test_truncated_rejected(self):
        index = FrequencyIndex(values=np.arange(10, dtype=np.uint32), seq_bytes=2)
        blob = index.serialize()
        with pytest.raises(CodecError):
            FrequencyIndex.deserialize(blob[:-3])

    def test_duplicate_values_rejected(self):
        from repro.util.varint import encode_uvarint

        blob = (
            encode_uvarint(2)
            + encode_uvarint(2)
            + np.array([7, 7], dtype=">u2").tobytes()
        )
        with pytest.raises(CodecError, match="duplicate"):
            FrequencyIndex.deserialize(blob)

    def test_lookup_table(self):
        index = FrequencyIndex(values=np.array([9, 4], dtype=np.uint32), seq_bytes=2)
        table = index.lookup_table()
        assert table[9] == 0 and table[4] == 1
        assert table[0] == -1

    def test_metadata_cost_is_two_bytes_per_value(self):
        index = FrequencyIndex(
            values=np.arange(1000, dtype=np.uint32), seq_bytes=2
        )
        assert len(index.serialize()) <= 2 * 1000 + 4


class TestCorrelation:
    def test_identical_vectors(self):
        f = np.array([5, 3, 0, 1])
        assert IdMapper.frequency_correlation(f, f) == pytest.approx(1.0)

    def test_orthogonal_vectors(self):
        a = np.array([1, 0, 0])
        b = np.array([0, 1, 0])
        assert IdMapper.frequency_correlation(a, b) == pytest.approx(0.0)

    def test_zero_vectors(self):
        z = np.zeros(4)
        assert IdMapper.frequency_correlation(z, z) == 1.0
        assert IdMapper.frequency_correlation(z, np.array([1, 0, 0, 0])) == 0.0

    def test_scale_invariant(self):
        a = np.array([3, 1, 4])
        assert IdMapper.frequency_correlation(a, 10 * a) == pytest.approx(1.0)
