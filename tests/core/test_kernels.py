"""Fused-kernel equivalence and ScratchArena reuse tests.

The fused backend must be byte-for-byte indistinguishable from the
``reference`` backend on *every* input -- including the floating-point
corner cases the ID mapper's frequency assumptions say nothing about
(denormals, NaN payload bits, infinities) and ragged chunk tails -- and
the arena must not leak state between chunks of different geometry.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    FrequencyIndex,
    IdMapper,
    IndexReusePolicy,
    PrimacyCompressor,
    PrimacyConfig,
    ScratchArena,
)
from repro.core.bytesplit import split_bytes, values_to_byte_matrix
from repro.core.kernels import (
    fill_high_from_seqs,
    ids_from_stream,
    linearize_ids,
    low_matrix_view,
    pack_sequences,
    raw_matrix,
    reference_apply,
)
from repro.core.linearize import Linearization, column_linearize, row_linearize


def _adversarial_payloads() -> dict[str, bytes]:
    """Float64 streams exercising the encodings frequency analysis hates."""
    rng = np.random.default_rng(7)
    denormals = rng.integers(1, 1 << 52, 256, dtype=np.uint64)  # exponent 0
    nan_payloads = (
        rng.integers(1, 1 << 52, 256, dtype=np.uint64)
        | np.uint64(0x7FF) << np.uint64(52)
        | rng.integers(0, 2, 256, dtype=np.uint64) << np.uint64(63)
    )
    infs = np.where(
        rng.integers(0, 2, 64, dtype=np.uint64).astype(bool),
        np.float64(np.inf).view(np.uint64),
        np.float64(-np.inf).view(np.uint64),
    )
    mixed = np.concatenate(
        [
            denormals,
            nan_payloads,
            infs,
            rng.normal(scale=1e300, size=128).view(np.uint64),
            np.zeros(64, dtype=np.uint64),
        ]
    )
    rng.shuffle(mixed)
    full = mixed.astype("<u8").tobytes()
    return {
        "denormals": denormals.astype("<u8").tobytes(),
        "nan-payloads": nan_payloads.astype("<u8").tobytes(),
        "infinities": infs.astype("<u8").tobytes(),
        "mixed": full,
        "ragged-tail": full + b"\x01\x02\x03",  # not a multiple of 8
        "tail-only": b"\xff" * 5,
        "empty": b"",
    }


_PAYLOADS = _adversarial_payloads()


class TestBackendEquivalence:
    """Fused and reference backends agree byte-for-byte."""

    @pytest.mark.parametrize("policy", list(IndexReusePolicy))
    @pytest.mark.parametrize("name", sorted(_PAYLOADS))
    def test_containers_identical(self, policy, name):
        data = _PAYLOADS[name]
        # Small chunks force multiple chunks per stream, exercising the
        # index reuse / extension paths of every policy.
        kwargs = dict(chunk_bytes=1024, index_policy=policy)
        fused, _ = PrimacyCompressor(PrimacyConfig(**kwargs)).compress(data)
        ref, _ = PrimacyCompressor(
            PrimacyConfig(kernels="reference", **kwargs)
        ).compress(data)
        assert fused == ref
        assert PrimacyCompressor(PrimacyConfig(**kwargs)).decompress(fused) == data
        assert (
            PrimacyCompressor(
                PrimacyConfig(kernels="reference", **kwargs)
            ).decompress(fused)
            == data
        )

    @pytest.mark.parametrize("linearization", list(Linearization))
    def test_linearizations_identical(self, linearization):
        data = _PAYLOADS["mixed"]
        kwargs = dict(chunk_bytes=2048, linearization=linearization)
        fused, _ = PrimacyCompressor(PrimacyConfig(**kwargs)).compress(data)
        ref, _ = PrimacyCompressor(
            PrimacyConfig(kernels="reference", **kwargs)
        ).compress(data)
        assert fused == ref
        assert PrimacyCompressor(PrimacyConfig(**kwargs)).decompress(fused) == data

    def test_extension_path_identical(self):
        """FIRST_CHUNK with new sequences in later chunks extends the index."""
        rng = np.random.default_rng(11)
        # Chunk 1 spans a narrow exponent range; chunk 2 a disjoint one,
        # so every chunk-2 sequence misses the reused index.
        chunk1 = rng.uniform(1.0, 2.0, 512)
        chunk2 = rng.uniform(1e200, 1e201, 512)
        data = np.concatenate([chunk1, chunk2]).astype("<f8").tobytes()
        kwargs = dict(chunk_bytes=4096, index_policy=IndexReusePolicy.FIRST_CHUNK)
        fused, _ = PrimacyCompressor(PrimacyConfig(**kwargs)).compress(data)
        ref, _ = PrimacyCompressor(
            PrimacyConfig(kernels="reference", **kwargs)
        ).compress(data)
        assert fused == ref
        assert PrimacyCompressor(PrimacyConfig(**kwargs)).decompress(fused) == data


class TestKernelUnits:
    """Each fused kernel against its naive formulation."""

    @pytest.fixture
    def raw(self):
        rng = np.random.default_rng(3)
        data = rng.normal(size=257).astype("<f8").tobytes()
        return data, raw_matrix(data, 8)

    @pytest.mark.parametrize("high_bytes", [1, 2, 3])
    def test_pack_sequences(self, raw, high_bytes):
        data, matrix = raw
        naive = IdMapper(high_bytes).sequences(
            split_bytes(values_to_byte_matrix(data, 8), high_bytes)[0]
        )
        fused = pack_sequences(matrix, high_bytes, ScratchArena())
        assert np.array_equal(fused, naive)

    @pytest.mark.parametrize("high_bytes", [1, 2, 3, 7, 8])
    def test_low_matrix_view(self, raw, high_bytes):
        data, matrix = raw
        naive = split_bytes(values_to_byte_matrix(data, 8), high_bytes)[1]
        view = low_matrix_view(matrix, high_bytes)
        assert np.array_equal(view, naive)
        if high_bytes < 8:
            assert view.base is not None  # a view, not a copy

    @pytest.mark.parametrize("order", list(Linearization))
    @pytest.mark.parametrize("seq_bytes", [1, 2, 3])
    def test_linearize_roundtrip(self, order, seq_bytes):
        rng = np.random.default_rng(5)
        ids = rng.integers(0, 1 << (8 * seq_bytes), 321).astype(np.int32)
        arena = ScratchArena()
        stream = linearize_ids(ids, seq_bytes, order, arena)
        mapper = IdMapper(seq_bytes)
        matrix = mapper._ids_to_bytes(ids.astype(np.int64))
        naive = (
            column_linearize(matrix)
            if order is Linearization.COLUMN
            else row_linearize(matrix)
        )
        assert stream == naive
        back = ids_from_stream(stream, ids.size, seq_bytes, order, arena)
        assert np.array_equal(back, ids)

    def test_ids_from_stream_rejects_bad_length(self):
        with pytest.raises(ValueError):
            ids_from_stream(b"\x00" * 7, 4, 2, Linearization.COLUMN, ScratchArena())

    @pytest.mark.parametrize("high_bytes", [1, 2, 3])
    def test_fill_high_inverts_pack(self, high_bytes):
        rng = np.random.default_rng(9)
        raw = rng.integers(0, 256, (100, 8), dtype=np.uint8)
        arena = ScratchArena()
        seqs = pack_sequences(raw, high_bytes, arena)
        out = np.zeros_like(raw)
        fill_high_from_seqs(seqs, high_bytes, out, arena)
        assert np.array_equal(out[:, 8 - high_bytes :], raw[:, 8 - high_bytes :])

    def test_apply_ids_matches_reference_on_miss(self):
        """Reuse-miss path: one gather, same IDs as the double-gather oracle."""
        mapper = IdMapper(2)
        seqs = np.array([7, 7, 3, 500, 3, 9999, 500, 7], dtype=np.uint32)
        index = FrequencyIndex(
            values=np.array([7, 3], dtype=np.uint32), seq_bytes=2
        )
        ref_matrix, ref_index = reference_apply(seqs, index)
        ids, used_index = mapper.apply_ids(seqs, index)
        assert np.array_equal(used_index.values, ref_index.values)
        assert np.array_equal(mapper._ids_to_bytes(ids.astype(np.int64)), ref_matrix)
        # The persistent table now serves the extended index without work.
        ids2, again = mapper.apply_ids(seqs, used_index)
        assert again is used_index
        assert np.array_equal(ids2, ids)


class TestScratchArena:
    def test_growth_and_reuse(self):
        arena = ScratchArena()
        a = arena.array("x", 100, np.int32)
        assert arena.allocations == 1
        b = arena.array("x", 50, np.int32)  # smaller request reuses
        assert arena.allocations == 1
        assert b.base is a.base or b.base is arena._buffers["x"]
        arena.array("x", 200, np.int32)  # growth reallocates
        assert arena.allocations == 2
        arena.array("y", 10)  # distinct name, distinct buffer
        assert arena.allocations == 3
        assert arena.nbytes >= 200 * 4 + 10

    def test_zero_and_negative(self):
        arena = ScratchArena()
        assert arena.array("z", 0).size == 0
        with pytest.raises(ValueError):
            arena.array("z", (-1,))

    def test_clear(self):
        arena = ScratchArena()
        arena.array("x", 64)
        arena.clear()
        assert arena.nbytes == 0
        arena.array("x", 64)
        assert arena.allocations == 2

    def test_no_state_leaks_between_shapes(self):
        """One arena-backed pipeline over varying chunk geometry matches
        fresh single-use pipelines on every payload."""
        rng = np.random.default_rng(13)
        shared = PrimacyCompressor(PrimacyConfig(chunk_bytes=4096))
        payloads = [
            rng.normal(size=n).astype("<f8").tobytes() + b"t" * tail
            for n, tail in [(700, 0), (64, 3), (511, 7), (1, 0), (0, 2), (700, 0)]
        ]
        for data in payloads:
            out, _ = shared.compress(data)
            fresh, _ = PrimacyCompressor(PrimacyConfig(chunk_bytes=4096)).compress(
                data
            )
            assert out == fresh
            assert shared.decompress(out) == data

    def test_steady_state_stops_allocating(self):
        rng = np.random.default_rng(17)
        comp = PrimacyCompressor(PrimacyConfig(chunk_bytes=4096))
        data = rng.normal(size=2048).astype("<f8").tobytes()
        blob, _ = comp.compress(data)
        comp.decompress(blob)
        allocations = comp.arena.allocations
        for _ in range(3):
            blob, _ = comp.compress(data)
            assert comp.decompress(blob) == data
        assert comp.arena.allocations == allocations

    def test_compressor_accepts_external_arena(self):
        arena = ScratchArena()
        comp = PrimacyCompressor(PrimacyConfig(chunk_bytes=4096), arena=arena)
        assert comp.arena is arena
        data = np.arange(512, dtype="<f8").tobytes()
        blob, _ = comp.compress(data)
        assert comp.decompress(blob) == data
        assert arena.allocations > 0
