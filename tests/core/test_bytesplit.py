"""Tests for byte-matrix views and the high/low split."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bytesplit import (
    byte_matrix_to_values,
    combine_bytes,
    split_bytes,
    values_to_byte_matrix,
)


class TestByteMatrix:
    def test_big_endian_column_order(self):
        # 1.0 == 0x3FF0000000000000: column 0 must be 0x3F, column 1 0xF0.
        matrix = values_to_byte_matrix(np.array([1.0]).tobytes())
        assert matrix[0, 0] == 0x3F
        assert matrix[0, 1] == 0xF0
        assert np.all(matrix[0, 2:] == 0)

    def test_sign_bit_in_column_zero(self):
        matrix = values_to_byte_matrix(np.array([-1.0]).tobytes())
        assert matrix[0, 0] == 0xBF

    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        data = rng.normal(0, 1e10, 1000).astype("<f8").tobytes()
        matrix = values_to_byte_matrix(data)
        assert byte_matrix_to_values(matrix) == data

    def test_nan_payload_preserved(self):
        patterns = np.array(
            [0x7FF8DEADBEEF0001, 0xFFF0000000000000, 0x0000000000000001],
            dtype=np.uint64,
        )
        data = patterns.tobytes()
        assert byte_matrix_to_values(values_to_byte_matrix(data)) == data

    def test_accepts_ndarray_input(self):
        arr = np.arange(10, dtype="<f8")
        m1 = values_to_byte_matrix(arr)
        m2 = values_to_byte_matrix(arr.tobytes())
        assert np.array_equal(m1, m2)

    def test_word_size_4(self):
        data = np.arange(6, dtype="<f4").tobytes()
        matrix = values_to_byte_matrix(data, word_bytes=4)
        assert matrix.shape == (6, 4)
        assert byte_matrix_to_values(matrix) == data

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            values_to_byte_matrix(b"1234567")  # 7 bytes

    def test_bad_matrix_rejected(self):
        with pytest.raises(ValueError):
            byte_matrix_to_values(np.zeros((4, 8), dtype=np.int16))

    @given(st.binary(max_size=800).filter(lambda b: len(b) % 8 == 0))
    @settings(max_examples=50, deadline=None)
    def test_property_roundtrip(self, data):
        assert byte_matrix_to_values(values_to_byte_matrix(data)) == data


class TestSplitCombine:
    def test_split_widths(self):
        matrix = values_to_byte_matrix(np.arange(16, dtype="<f8").tobytes())
        high, low = split_bytes(matrix, 2)
        assert high.shape == (16, 2)
        assert low.shape == (16, 6)

    def test_combine_inverts_split(self):
        rng = np.random.default_rng(1)
        matrix = rng.integers(0, 256, (100, 8), dtype=np.uint8)
        for width in [1, 2, 3, 7, 8]:
            high, low = split_bytes(matrix, width)
            assert np.array_equal(combine_bytes(high, low), matrix)

    def test_invalid_width(self):
        matrix = np.zeros((4, 8), dtype=np.uint8)
        with pytest.raises(ValueError):
            split_bytes(matrix, 0)
        with pytest.raises(ValueError):
            split_bytes(matrix, 9)

    def test_combine_row_mismatch(self):
        with pytest.raises(ValueError):
            combine_bytes(
                np.zeros((3, 2), dtype=np.uint8), np.zeros((4, 6), dtype=np.uint8)
            )

    def test_exponent_lands_in_high_bytes(self):
        """Sanity: the float64 exponent is fully inside the 2 high bytes."""
        vals = np.array([1.5, 3.7, 1e100, 1e-100])
        matrix = values_to_byte_matrix(vals.tobytes())
        high, _ = split_bytes(matrix, 2)
        # Exponent = bits 1..11 -> bytes 0 and the top nibble of byte 1.
        exponents = ((high[:, 0].astype(int) & 0x7F) << 4) | (high[:, 1] >> 4)
        _, expected = np.frexp(vals)
        assert np.array_equal(exponents - 1022, expected)
