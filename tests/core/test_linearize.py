"""Tests for byte-level linearization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.linearize import (
    Linearization,
    column_linearize,
    delinearize,
    row_linearize,
)


@pytest.fixture
def matrix():
    return np.arange(24, dtype=np.uint8).reshape(6, 4)


class TestLinearize:
    def test_row_is_natural_order(self, matrix):
        assert row_linearize(matrix) == matrix.tobytes()

    def test_column_is_transpose(self, matrix):
        assert column_linearize(matrix) == matrix.T.copy().tobytes()

    def test_column_groups_columns(self):
        m = np.array([[1, 2], [1, 2], [1, 2]], dtype=np.uint8)
        assert column_linearize(m) == b"\x01\x01\x01\x02\x02\x02"

    @pytest.mark.parametrize("order", list(Linearization))
    def test_roundtrip(self, matrix, order):
        data = (
            column_linearize(matrix)
            if order is Linearization.COLUMN
            else row_linearize(matrix)
        )
        out = delinearize(data, *matrix.shape, order)
        assert np.array_equal(out, matrix)

    def test_column_creates_runs_on_id_data(self):
        """Column order turns low-ID dominance into 0-byte runs (Sec II-D)."""
        rng = np.random.default_rng(0)
        ids = rng.zipf(1.5, 1000).clip(0, 500).astype(np.uint16)
        m = np.column_stack([(ids >> 8).astype(np.uint8), (ids & 0xFF).astype(np.uint8)])
        col = np.frombuffer(column_linearize(m), dtype=np.uint8)
        row = np.frombuffer(row_linearize(m), dtype=np.uint8)
        runs_col = np.count_nonzero(np.diff(col) != 0)
        runs_row = np.count_nonzero(np.diff(row) != 0)
        assert runs_col < runs_row

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            delinearize(b"\x00" * 10, 3, 4, Linearization.ROW)

    def test_dtype_validation(self):
        with pytest.raises(ValueError):
            row_linearize(np.zeros((2, 2), dtype=np.int64))
