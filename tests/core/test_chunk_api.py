"""Tests for the public chunk-level API (compress_chunk / decompress_chunk).

This is the interface the storage layer builds on; it must be usable
directly by downstream code that wants custom chunk management.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compressors import CodecError
from repro.core import IndexReusePolicy, PrimacyCompressor, PrimacyConfig
from repro.core.primacy import chunk_record_index_section
from repro.datasets import generate_bytes


@pytest.fixture
def chunks():
    data = generate_bytes("obs_temp", 6144, seed=31)
    third = len(data) // 3
    return [data[i * third : (i + 1) * third] for i in range(3)]


class TestCompressChunk:
    def test_stateless_roundtrip(self, chunks):
        pc = PrimacyCompressor(PrimacyConfig(chunk_bytes=1 << 20))
        record, stats, state = pc.compress_chunk(chunks[0])
        assert stats.n_values == len(chunks[0]) // 8
        restored, index = pc.decompress_chunk(record)
        assert restored == chunks[0]
        assert index.n_unique == stats.n_unique

    def test_state_threading_with_reuse(self, chunks):
        pc = PrimacyCompressor(
            PrimacyConfig(
                chunk_bytes=1 << 20,
                index_policy=IndexReusePolicy.FIRST_CHUNK,
            )
        )
        state = None
        records = []
        for chunk in chunks:
            record, stats, state = pc.compress_chunk(chunk, state)
            records.append(record)
        # First inline, rest reused.
        inline_flags = [
            chunk_record_index_section(r, 2)[0] for r in records
        ]
        assert inline_flags == [True, False, False]
        # Decode the chain.
        current = None
        out = b""
        for record in records:
            chunk, current = pc.decompress_chunk(record, current)
            out += chunk
        assert out == b"".join(chunks)

    def test_reused_record_requires_index(self, chunks):
        pc = PrimacyCompressor(
            PrimacyConfig(
                chunk_bytes=1 << 20,
                index_policy=IndexReusePolicy.FIRST_CHUNK,
            )
        )
        _, _, state = pc.compress_chunk(chunks[0])
        record, _, _ = pc.compress_chunk(chunks[1], state)
        with pytest.raises(CodecError, match="index"):
            pc.decompress_chunk(record, None)

    def test_unaligned_chunk_rejected(self):
        pc = PrimacyCompressor()
        with pytest.raises(ValueError, match="whole words"):
            pc.compress_chunk(b"1234567")


class TestIndexSectionParser:
    def test_inline_section(self, chunks):
        pc = PrimacyCompressor(PrimacyConfig(chunk_bytes=1 << 20))
        record, stats, _ = pc.compress_chunk(chunks[0])
        inline, index, n_values = chunk_record_index_section(record, 2)
        assert inline is True
        assert n_values == stats.n_values
        assert index.n_unique == stats.n_unique

    def test_extension_section(self, chunks):
        pc = PrimacyCompressor(
            PrimacyConfig(
                chunk_bytes=1 << 20,
                index_policy=IndexReusePolicy.FIRST_CHUNK,
            )
        )
        _, _, state = pc.compress_chunk(chunks[0])
        record, stats, _ = pc.compress_chunk(chunks[1], state)
        inline, extension, n_values = chunk_record_index_section(record, 2)
        assert inline is False
        assert isinstance(extension, np.ndarray)
        assert n_values == stats.n_values

    def test_truncated_extension_rejected(self, chunks):
        pc = PrimacyCompressor(
            PrimacyConfig(
                chunk_bytes=1 << 20,
                index_policy=IndexReusePolicy.FIRST_CHUNK,
            )
        )
        _, _, state = pc.compress_chunk(chunks[0])
        record, _, _ = pc.compress_chunk(chunks[1], state)
        inline, ext, _ = chunk_record_index_section(record, 2)
        if not inline and ext.size:
            with pytest.raises((CodecError, ValueError)):
                chunk_record_index_section(record[: 4 + 1], 2)
