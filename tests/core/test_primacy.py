"""End-to-end tests for the PRIMACY compressor and container."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors import CodecError, evaluate_codec, get_codec
from repro.core import (
    IndexReusePolicy,
    PrimacyCodec,
    PrimacyCompressor,
    PrimacyConfig,
)
from repro.core.linearize import Linearization
from repro.datasets import generate_bytes


@pytest.fixture
def compressor():
    return PrimacyCompressor(PrimacyConfig(chunk_bytes=64 * 1024))


class TestRoundtrip:
    @pytest.mark.parametrize(
        "payload",
        [
            b"",
            b"1234567",  # tail only
            np.arange(1, dtype="<f8").tobytes(),
            np.arange(100, dtype="<f8").tobytes() + b"xy",
        ],
        ids=["empty", "tail-only", "one-value", "values+tail"],
    )
    def test_edge_payloads(self, compressor, payload):
        out, _ = compressor.compress(payload)
        assert compressor.decompress(out) == payload

    def test_multi_chunk(self, smooth_doubles):
        compressor = PrimacyCompressor(PrimacyConfig(chunk_bytes=16 * 1024))
        out, stats = compressor.compress(smooth_doubles)
        assert len(stats.chunks) == len(smooth_doubles) // (16 * 1024)
        assert compressor.decompress(out) == smooth_doubles

    @pytest.mark.parametrize("policy", list(IndexReusePolicy))
    def test_index_policies(self, smooth_doubles, policy):
        compressor = PrimacyCompressor(
            PrimacyConfig(chunk_bytes=16 * 1024, index_policy=policy)
        )
        out, _ = compressor.compress(smooth_doubles)
        assert compressor.decompress(out) == smooth_doubles

    @pytest.mark.parametrize("order", list(Linearization))
    def test_linearizations(self, noisy_doubles, order):
        compressor = PrimacyCompressor(
            PrimacyConfig(chunk_bytes=32 * 1024, linearization=order)
        )
        out, _ = compressor.compress(noisy_doubles)
        assert compressor.decompress(out) == noisy_doubles

    @pytest.mark.parametrize("backend", ["pyzlib", "pylzo", "huffman", "rle", "null"])
    def test_backend_codecs(self, obs_temp_small, backend):
        compressor = PrimacyCompressor(
            PrimacyConfig(codec=backend, chunk_bytes=32 * 1024)
        )
        out, _ = compressor.compress(obs_temp_small)
        assert compressor.decompress(out) == obs_temp_small

    @pytest.mark.parametrize("high_bytes", [1, 2, 3])
    def test_split_widths(self, obs_temp_small, high_bytes):
        compressor = PrimacyCompressor(
            PrimacyConfig(chunk_bytes=32 * 1024, high_bytes=high_bytes)
        )
        out, _ = compressor.compress(obs_temp_small)
        assert compressor.decompress(out) == obs_temp_small

    def test_special_float_patterns(self, compressor):
        special = np.array(
            [np.nan, -np.nan, np.inf, -np.inf, 0.0, -0.0, 5e-324]
        ).tobytes()
        special += np.uint64(0x7FF8DEADBEEF0001).tobytes()
        out, _ = compressor.compress(special)
        assert compressor.decompress(out) == special

    def test_cross_instance_decode(self, obs_temp_small):
        """The container is self-describing: a default-config instance
        must decode output produced under any configuration."""
        enc = PrimacyCompressor(
            PrimacyConfig(
                codec="pylzo",
                chunk_bytes=16 * 1024,
                linearization=Linearization.ROW,
                index_policy=IndexReusePolicy.FIRST_CHUNK,
            )
        )
        out, _ = enc.compress(obs_temp_small)
        assert PrimacyCompressor().decompress(out) == obs_temp_small

    def test_deterministic_output(self, obs_temp_small):
        c1 = PrimacyCompressor(PrimacyConfig(chunk_bytes=32 * 1024))
        c2 = PrimacyCompressor(PrimacyConfig(chunk_bytes=32 * 1024))
        out1, _ = c1.compress(obs_temp_small)
        out2, _ = c2.compress(obs_temp_small)
        assert out1 == out2

    @given(seed=st.integers(0, 50), n=st.integers(0, 400))
    @settings(max_examples=25, deadline=None)
    def test_property_roundtrip_random_floats(self, seed, n):
        rng = np.random.default_rng(seed)
        data = rng.normal(0, 10.0 ** rng.integers(-10, 10), n).astype("<f8").tobytes()
        compressor = PrimacyCompressor(PrimacyConfig(chunk_bytes=8 * 1024))
        out, _ = compressor.compress(data)
        assert compressor.decompress(out) == data


class TestStats:
    def test_alpha1_is_high_fraction(self, compressor, smooth_doubles):
        _, stats = compressor.compress(smooth_doubles)
        assert stats.alpha1 == pytest.approx(0.25)

    def test_cr_matches_sizes(self, compressor, smooth_doubles):
        out, stats = compressor.compress(smooth_doubles)
        assert stats.compression_ratio == pytest.approx(
            len(smooth_doubles) / len(out)
        )

    def test_sigma_bounds(self, compressor, noisy_doubles):
        _, stats = compressor.compress(noisy_doubles)
        assert 0.0 < stats.sigma_ho <= 1.2
        assert 0.0 <= stats.sigma_lo <= 1.2
        assert 0.0 <= stats.alpha2 <= 1.0

    def test_throughput_stats_positive(self, compressor, noisy_doubles):
        _, stats = compressor.compress(noisy_doubles)
        assert stats.preconditioner_mbps > 0
        assert stats.compressor_mbps > 0

    def test_metadata_counted(self, compressor, smooth_doubles):
        _, stats = compressor.compress(smooth_doubles)
        assert stats.metadata_bytes > 0

    def test_index_reuse_reduces_metadata(self, obs_temp_small):
        per_chunk = PrimacyCompressor(
            PrimacyConfig(chunk_bytes=8 * 1024, index_policy=IndexReusePolicy.PER_CHUNK)
        )
        reuse = PrimacyCompressor(
            PrimacyConfig(
                chunk_bytes=8 * 1024, index_policy=IndexReusePolicy.FIRST_CHUNK
            )
        )
        _, stats_per = per_chunk.compress(obs_temp_small)
        _, stats_reuse = reuse.compress(obs_temp_small)
        assert stats_reuse.metadata_bytes < stats_per.metadata_bytes
        assert sum(c.index_reused for c in stats_reuse.chunks) == len(
            stats_reuse.chunks
        ) - 1


class TestContainerIntegrity:
    def test_checksum_detects_corruption(self, compressor, smooth_doubles):
        out, _ = compressor.compress(smooth_doubles)
        corrupted = bytearray(out)
        corrupted[len(out) // 2] ^= 0xFF
        with pytest.raises(CodecError):
            compressor.decompress(bytes(corrupted))

    def test_bad_magic_rejected(self, compressor):
        with pytest.raises(CodecError, match="container"):
            compressor.decompress(b"NOPE" + b"\x00" * 20)

    def test_bad_version_rejected(self, compressor, smooth_doubles):
        out, _ = compressor.compress(smooth_doubles)
        corrupted = bytearray(out)
        corrupted[4] = 99
        with pytest.raises(CodecError, match="version"):
            compressor.decompress(bytes(corrupted))

    def test_truncated_container(self, compressor, smooth_doubles):
        out, _ = compressor.compress(smooth_doubles)
        with pytest.raises((CodecError, ValueError)):
            compressor.decompress(out[: len(out) // 2])

    def test_no_checksum_mode(self, smooth_doubles):
        compressor = PrimacyCompressor(
            PrimacyConfig(chunk_bytes=32 * 1024, checksum=False)
        )
        out, _ = compressor.compress(smooth_doubles)
        assert compressor.decompress(out) == smooth_doubles


class TestPaperClaims:
    """The headline Table III behaviours on synthetic datasets."""

    def test_primacy_beats_zlib_on_hard_data(self):
        data = generate_bytes("gts_chkp_zeon", 16384, seed=3)
        mz = evaluate_codec(get_codec("pyzlib"), data)
        mp = evaluate_codec(PrimacyCodec(chunk_bytes=256 * 1024), data)
        assert mp.compression_ratio > mz.compression_ratio

    def test_primacy_loses_on_easy_data(self):
        """msg_sppm: index overhead on easy-to-compress data (Sec IV-E)."""
        data = generate_bytes("msg_sppm", 16384, seed=3)
        mz = evaluate_codec(get_codec("pyzlib"), data)
        mp = evaluate_codec(PrimacyCodec(chunk_bytes=256 * 1024), data)
        assert mp.compression_ratio < mz.compression_ratio

    def test_primacy_faster_than_vanilla_zlib(self):
        data = generate_bytes("obs_temp", 32768, seed=3)
        mz = evaluate_codec(get_codec("pyzlib"), data)
        mp = evaluate_codec(PrimacyCodec(chunk_bytes=256 * 1024), data)
        assert mp.compression_mbps > mz.compression_mbps
        assert mp.decompression_mbps > mz.decompression_mbps


class TestConfig:
    def test_high_bytes_validation(self):
        with pytest.raises(ValueError):
            PrimacyConfig(high_bytes=0)
        with pytest.raises(ValueError):
            PrimacyConfig(high_bytes=8)

    def test_codec_adapter_exposes_stats(self, obs_temp_small):
        codec = PrimacyCodec(chunk_bytes=32 * 1024)
        codec.compress(obs_temp_small)
        assert codec.last_stats is not None
        assert codec.last_stats.original_bytes == len(obs_temp_small)

    def test_codec_adapter_rejects_double_config(self):
        with pytest.raises(ValueError):
            PrimacyCodec(PrimacyConfig(), chunk_bytes=1024)
