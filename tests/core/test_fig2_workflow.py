"""Figure 2: the PRIMACY workflow's stage order, verified explicitly.

The paper's Fig 2 shows: chunk -> split (high/low) -> frequency analysis
-> ID mapping + index -> [IDs -> solver] and [low bytes -> ISOBAR ->
solver/raw] -> outputs {index, compressed IDs, ISOBAR blob}.  These tests
pin that structure by spying on the backend codec and by checking the
container's sections directly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compressors import Codec, get_codec
from repro.core import PrimacyCompressor, PrimacyConfig
from repro.core.bytesplit import split_bytes, values_to_byte_matrix
from repro.core.idmap import IdMapper
from repro.datasets import generate_bytes


class _SpyCodec(Codec):
    """Records every buffer the pipeline hands to the solver."""

    name = "spy"

    def __init__(self) -> None:
        self.inner = get_codec("pyzlib")
        self.compressed_inputs: list[bytes] = []

    def compress(self, data: bytes) -> bytes:
        self.compressed_inputs.append(data)
        return self.inner.compress(data)

    def decompress(self, data: bytes) -> bytes:
        return self.inner.decompress(data)


@pytest.fixture
def spy_run():
    data = generate_bytes("num_plasma", 4096, seed=17)
    compressor = PrimacyCompressor(PrimacyConfig(chunk_bytes=len(data)))
    spy = _SpyCodec()
    compressor._codec = spy  # swap the solver for the spy
    container, stats = compressor.compress(data)
    return data, spy, container, stats


class TestWorkflowStages:
    def test_solver_called_for_ids_then_isobar(self, spy_run):
        data, spy, _, stats = spy_run
        # Two solver calls per chunk: the ID stream, then the ISOBAR
        # compressible group (num_plasma's quantized mantissa guarantees
        # ISOBAR finds compressible columns).
        n_chunks = len(stats.chunks)
        assert stats.alpha2 > 0
        assert len(spy.compressed_inputs) == 2 * n_chunks

    def test_first_solver_input_is_the_column_linearized_ids(self, spy_run):
        data, spy, _, _ = spy_run
        matrix = values_to_byte_matrix(data, 8)
        high, _ = split_bytes(matrix, 2)
        mapper = IdMapper(seq_bytes=2)
        index = mapper.build_index(high)
        ids, _ = mapper.apply(high, index)
        expected = np.ascontiguousarray(ids.T).tobytes()
        assert spy.compressed_inputs[0] == expected

    def test_id_stream_is_more_repeatable_than_raw_high_bytes(self, spy_run):
        data, spy, _, _ = spy_run
        from repro.util.entropy import top_byte_fraction

        matrix = values_to_byte_matrix(data, 8)
        high, _ = split_bytes(matrix, 2)
        raw_top = top_byte_fraction(np.ascontiguousarray(high).tobytes())
        id_top = top_byte_fraction(spy.compressed_inputs[0])
        assert id_top >= raw_top  # the preconditioning claim itself

    def test_isobar_input_is_low_byte_data(self, spy_run):
        data, spy, _, _ = spy_run
        # The second solver call covers (a subset of) the 6 low-order
        # byte columns: its size is a multiple of the row count.
        n_values = len(data) // 8
        isobar_input = spy.compressed_inputs[1]
        assert len(isobar_input) % n_values == 0
        assert 0 < len(isobar_input) <= 6 * n_values

    def test_container_decodes_with_real_codec(self, spy_run):
        data, _, container, _ = spy_run
        # The spy compressed with pyzlib internally, so the standard
        # pipeline must decode the container.
        assert PrimacyCompressor().decompress(container) == data
