"""Tests for the primacy CLI."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.datasets import generate_bytes


@pytest.fixture
def f64_file(tmp_path):
    path = tmp_path / "data.f64"
    path.write_bytes(generate_bytes("obs_temp", 4096, seed=1))
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compress_defaults(self):
        args = build_parser().parse_args(["compress", "a", "b"])
        assert args.codec == "pyzlib"
        assert args.chunk_bytes == 3 * 1024 * 1024
        assert args.linearization == "column"


class TestCommands:
    def test_compress_decompress_roundtrip(self, f64_file, tmp_path, capsys):
        pri = tmp_path / "data.pri"
        out = tmp_path / "data.out"
        assert main(["compress", str(f64_file), str(pri),
                     "--chunk-bytes", "16384"]) == 0
        assert "CR=" in capsys.readouterr().out
        assert main(["decompress", str(pri), str(out)]) == 0
        assert out.read_bytes() == f64_file.read_bytes()

    def test_compress_with_options(self, f64_file, tmp_path):
        pri = tmp_path / "o.pri"
        out = tmp_path / "o.out"
        assert main([
            "compress", str(f64_file), str(pri),
            "--codec", "pylzo", "--linearization", "row",
            "--index-policy", "first_chunk", "--chunk-bytes", "8192",
        ]) == 0
        assert main(["decompress", str(pri), str(out)]) == 0
        assert out.read_bytes() == f64_file.read_bytes()

    def test_analyze(self, f64_file, capsys):
        assert main(["analyze", str(f64_file)]) == 0
        out = capsys.readouterr().out
        assert "repeatability gain" in out
        assert "unique exponent pairs" in out

    def test_analyze_too_small(self, tmp_path, capsys):
        path = tmp_path / "tiny"
        path.write_bytes(b"abc")
        assert main(["analyze", str(path)]) == 1

    def test_codecs_lists_registry(self, capsys):
        assert main(["codecs"]) == 0
        out = capsys.readouterr().out
        assert "pyzlib" in out and "primacy" in out

    def test_datasets_list(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "msg_sppm" in out
        assert len(out.strip().splitlines()) == 20

    def test_datasets_write(self, tmp_path, capsys):
        assert main(["datasets", "--write", str(tmp_path / "d"),
                     "--n-values", "64"]) == 0
        files = list((tmp_path / "d").glob("*.f64"))
        assert len(files) == 20
        assert all(f.stat().st_size == 64 * 8 for f in files)

    def test_model(self, capsys):
        assert main(["model"]) == 0
        out = capsys.readouterr().out
        assert "base write" in out
        assert "primacy write" in out

    def test_error_reported(self, tmp_path, capsys):
        missing = tmp_path / "missing.f64"
        assert main(["compress", str(missing), str(tmp_path / "x")]) == 1
        assert "error:" in capsys.readouterr().err


class TestStorageCommands:
    @pytest.fixture
    def prif_file(self, f64_file, tmp_path):
        out = tmp_path / "data.prif"
        assert main(["pack", str(f64_file), str(out),
                     "--chunk-bytes", "8192"]) == 0
        return out

    def test_pack_reports_stats(self, f64_file, tmp_path, capsys):
        out = tmp_path / "p.prif"
        assert main(["pack", str(f64_file), str(out),
                     "--chunk-bytes", "8192"]) == 0
        assert "CR=" in capsys.readouterr().out

    def test_inspect(self, prif_file, capsys):
        assert main(["inspect", str(prif_file)]) == 0
        out = capsys.readouterr().out
        assert "chunks:" in out
        assert "inline" in out

    def test_extract_range(self, prif_file, f64_file, tmp_path, capsys):
        out = tmp_path / "slice.f64"
        assert main(["extract", str(prif_file), str(out),
                     "--start", "100", "--count", "50"]) == 0
        orig = f64_file.read_bytes()
        assert out.read_bytes() == orig[100 * 8 : 150 * 8]

    def test_extract_whole(self, prif_file, f64_file, tmp_path):
        out = tmp_path / "all.f64"
        assert main(["extract", str(prif_file), str(out)]) == 0
        orig = f64_file.read_bytes()
        usable = len(orig) - len(orig) % 8
        assert out.read_bytes() == orig[:usable]


class TestArchiveCommands:
    """pack --shards / read / compact / fsck --json / salvage --json."""

    @pytest.fixture
    def archive_dir(self, f64_file, tmp_path):
        arc = tmp_path / "arc"
        assert main(["pack", str(f64_file), str(arc),
                     "--shards", "2", "--chunk-bytes", "8192"]) == 0
        return arc

    @pytest.fixture
    def prif_file(self, f64_file, tmp_path):
        out = tmp_path / "data.prif"
        assert main(["pack", str(f64_file), str(out),
                     "--chunk-bytes", "8192"]) == 0
        return out

    def test_pack_shards_reports_layout(self, f64_file, tmp_path, capsys):
        arc = tmp_path / "a"
        assert main(["pack", str(f64_file), str(arc),
                     "--shards", "2", "--chunk-bytes", "8192"]) == 0
        out = capsys.readouterr().out
        assert "shards=2" in out and "chunks=4" in out
        assert (arc / "catalog.prac").exists()
        assert sorted(p.name for p in arc.glob("shard-*.prif")) == [
            "shard-0000.prif", "shard-0001.prif",
        ]

    def test_pack_shards_requires_per_chunk(self, f64_file, tmp_path, capsys):
        assert main(["pack", str(f64_file), str(tmp_path / "a"),
                     "--shards", "2",
                     "--index-policy", "first_chunk"]) == 2
        assert "per-chunk" in capsys.readouterr().err

    def test_pack_shards_rejects_zero(self, f64_file, tmp_path, capsys):
        assert main(["pack", str(f64_file), str(tmp_path / "a"),
                     "--shards", "0"]) == 2

    def test_read_chunk_from_archive(self, archive_dir, f64_file,
                                     tmp_path, capsys):
        out = tmp_path / "chunk.bin"
        assert main(["read", str(archive_dir), "--chunk", "1",
                     "-o", str(out)]) == 0
        assert "read chunk 1: 8192 bytes" in capsys.readouterr().out
        assert out.read_bytes() == f64_file.read_bytes()[8192:16384]

    def test_read_range_from_archive(self, archive_dir, f64_file,
                                     tmp_path, capsys):
        out = tmp_path / "range.bin"
        assert main(["read", str(archive_dir), "--range", "0", "3",
                     "-o", str(out)]) == 0
        assert out.read_bytes() == f64_file.read_bytes()[: 3 * 8192]

    def test_read_values_from_prif_file(self, prif_file, f64_file,
                                        tmp_path, capsys):
        out = tmp_path / "vals.bin"
        assert main(["read", str(prif_file), "--values", "100", "50",
                     "-o", str(out)]) == 0
        assert out.read_bytes() == f64_file.read_bytes()[100 * 8 : 150 * 8]

    def test_read_out_of_range_is_usage_error(self, archive_dir, capsys):
        assert main(["read", str(archive_dir), "--chunk", "99"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_read_missing_archive_is_error(self, tmp_path, capsys):
        missing = tmp_path / "nope"
        missing.mkdir()
        assert main(["read", str(missing), "--chunk", "0"]) == 1

    def test_compact_rebalances(self, archive_dir, f64_file,
                                tmp_path, capsys):
        dest = tmp_path / "compacted"
        assert main(["compact", str(archive_dir), str(dest),
                     "--shards", "4"]) == 0
        assert "4 shard(s)" in capsys.readouterr().out
        assert main(["fsck", str(dest)]) == 0
        out = tmp_path / "whole.bin"
        capsys.readouterr()
        assert main(["read", str(dest), "--range", "0", "4",
                     "-o", str(out)]) == 0
        assert out.read_bytes() == f64_file.read_bytes()[: 4 * 8192]

    def test_compact_in_place_is_error(self, archive_dir, capsys):
        assert main(["compact", str(archive_dir), str(archive_dir)]) == 1
        assert "destination" in capsys.readouterr().err

    def test_fsck_archive_json(self, archive_dir, capsys):
        import json

        assert main(["fsck", str(archive_dir), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["format"] == "PRAC"
        assert doc["ok"] is True and doc["sealed"] is True
        assert doc["n_chunks"] == doc["n_chunks_ok"] == 4
        assert set(doc["shards"]) == {"shard-0000.prif", "shard-0001.prif"}

    def test_fsck_json_on_damaged_archive(self, archive_dir, capsys):
        import json

        shard = archive_dir / "shard-0001.prif"
        blob = bytearray(shard.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        shard.write_bytes(bytes(blob))
        assert main(["fsck", str(archive_dir), "--json"]) == 2
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is False
        assert doc["shards"]["shard-0000.prif"]["ok"] is True
        assert doc["shards"]["shard-0001.prif"]["ok"] is False

    def test_fsck_prif_file_json(self, prif_file, capsys):
        import json

        assert main(["fsck", str(prif_file), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["format"] == "PRIF" and doc["ok"] is True

    def test_salvage_archive_json(self, archive_dir, tmp_path, capsys):
        import json

        shard = archive_dir / "shard-0001.prif"
        blob = bytearray(shard.read_bytes())
        blob[-40] ^= 0xFF
        shard.write_bytes(bytes(blob))
        assert main(["salvage", str(archive_dir),
                     str(tmp_path / "rescued.bin"), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["mode"] == "catalog" and doc["complete"] is False
        assert doc["n_chunks"] == 4
        flat = [i for lo, hi in doc["recovered_ranges"]
                for i in range(lo, hi)]
        lost = [i for lo, hi in doc["lost_ranges"] for i in range(lo, hi)]
        assert sorted(flat + lost) == [0, 1, 2, 3]
        assert doc["n_recovered"] == len(flat) >= 2

    def test_salvage_prif_json(self, prif_file, tmp_path, capsys):
        import json

        blob = bytearray(prif_file.read_bytes())
        prif_file.write_bytes(bytes(blob[:-7]))  # torn trailer
        assert main(["salvage", str(prif_file),
                     str(tmp_path / "out.bin"), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["n_recovered"] == 4
        assert doc["recovered_ranges"] == [[0, 4]]
        assert doc["lost_ranges"] == []

    def test_read_whole_archive_matches_monolithic(self, f64_file,
                                                   tmp_path, capsys):
        arc = tmp_path / "arc"
        mono = tmp_path / "mono.prif"
        assert main(["pack", str(f64_file), str(arc),
                     "--shards", "3", "--chunk-bytes", "8192"]) == 0
        assert main(["pack", str(f64_file), str(mono),
                     "--chunk-bytes", "8192"]) == 0
        a = tmp_path / "a.bin"
        b = tmp_path / "b.bin"
        assert main(["read", str(arc), "--values", "0", "512",
                     "-o", str(a)]) == 0
        assert main(["read", str(mono), "--values", "0", "512",
                     "-o", str(b)]) == 0
        assert a.read_bytes() == b.read_bytes()


class TestReportCommand:
    def test_report_to_stdout(self, capsys):
        assert main(["report", "obs_temp", "--n-values", "1024"]) == 0
        assert "# Dataset report" in capsys.readouterr().out

    def test_report_to_file(self, tmp_path):
        out = tmp_path / "report.md"
        assert main(["report", "num_plasma", "--n-values", "1024",
                     "--output", str(out)]) == 0
        assert "Codec comparison" in out.read_text()

    def test_report_unknown(self, capsys):
        assert main(["report", "bogus"]) == 1


class TestVerifyCommand:
    def test_verify_prif(self, f64_file, tmp_path, capsys):
        out = tmp_path / "v.prif"
        assert main(["pack", str(f64_file), str(out),
                     "--chunk-bytes", "8192"]) == 0
        capsys.readouterr()
        assert main(["verify", str(out)]) == 0
        assert "PRIF ok" in capsys.readouterr().out

    def test_verify_prim(self, f64_file, tmp_path, capsys):
        out = tmp_path / "v.pri"
        assert main(["compress", str(f64_file), str(out),
                     "--chunk-bytes", "8192"]) == 0
        capsys.readouterr()
        assert main(["verify", str(out)]) == 0
        assert "PRIM ok" in capsys.readouterr().out

    def test_verify_corrupted_fails(self, f64_file, tmp_path, capsys):
        out = tmp_path / "c.pri"
        assert main(["compress", str(f64_file), str(out),
                     "--chunk-bytes", "8192"]) == 0
        blob = bytearray(out.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        out.write_bytes(bytes(blob))
        assert main(["verify", str(out)]) == 1

    def test_verify_not_a_container(self, tmp_path, capsys):
        bad = tmp_path / "x.bin"
        bad.write_bytes(b"not a container at all")
        assert main(["verify", str(bad)]) == 1


class TestProbeCommand:
    def test_probe_output(self, f64_file, capsys):
        assert main(["probe", str(f64_file)]) == 0
        out = capsys.readouterr().out
        assert "PRIMACY:" in out
        assert "hard-to-compress" in out

    def test_probe_with_verdict(self, f64_file, capsys):
        assert main(["probe", str(f64_file), "--network-mbps", "0.01"]) == 0
        assert "COMPRESS" in capsys.readouterr().out


class TestStatsCommand:
    @pytest.fixture(autouse=True)
    def _clean_obs(self):
        from repro import obs

        yield
        obs.disable()
        obs.reset()

    def test_stats_reports_stage_time_bytes_ratio(self, f64_file, capsys):
        assert main(["stats", str(f64_file), "--chunk-bytes", "8192"]) == 0
        out = capsys.readouterr().out
        assert "CR=" in out
        assert "per-stage wall time" in out
        assert "primacy.solver" in out
        assert "primacy.compress.bytes_in" in out

    def test_stats_dataset_json(self, capsys):
        import json

        assert main(["stats", "--dataset", "obs_temp",
                     "--n-values", "2048", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["workload"]["original_bytes"] == 2048 * 8
        assert "primacy.compress.bytes_in" in report["counters"]
        assert report["stages"]

    def test_stats_writes_trace_file(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main(["stats", "--dataset", "obs_temp", "--n-values", "2048",
                     "--trace", str(trace)]) == 0
        assert trace.exists() and trace.read_text().count("\n") > 0

    def test_stats_requires_exactly_one_source(self, f64_file, capsys):
        assert main(["stats"]) == 2
        assert main(["stats", str(f64_file), "--dataset", "obs_temp"]) == 2

    def test_stats_leaves_obs_disabled(self, f64_file, capsys):
        from repro import obs

        assert main(["stats", str(f64_file), "--chunk-bytes", "8192"]) == 0
        assert not obs.enabled()


class TestExitCodeContract:
    """The process exit codes scripts and CI key off, pinned.

    0 success, 1 operational error, 2 usage error (doubling as "fsck
    found corruption"), 3 benchmark regression under ``--check``, 4
    serve startup failure.  Changing any of these breaks callers; the
    docstring of :mod:`repro.cli` documents the contract.
    """

    def test_constants_are_pinned(self):
        from repro import cli

        assert cli.EXIT_OK == 0
        assert cli.EXIT_ERROR == 1
        assert cli.EXIT_USAGE == 2
        assert cli.EXIT_BENCH_REGRESSION == 3
        assert cli.EXIT_SERVE_STARTUP == 4

    def test_fsck_corruption_exits_2(self, f64_file, tmp_path, capsys):
        out = tmp_path / "f.prif"
        assert main(["pack", str(f64_file), str(out),
                     "--chunk-bytes", "8192"]) == 0
        blob = bytearray(out.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        out.write_bytes(bytes(blob))
        assert main(["fsck", str(out)]) == 2

    def test_bench_regression_exits_3(self, tmp_path, capsys):
        import json

        baseline = tmp_path / "impossible.json"
        baseline.write_text(json.dumps(
            {"results": {"obs_temp": {"compression_ratio": 1e9}}}
        ))
        assert main(["bench", "--datasets", "obs_temp",
                     "--n-values", "2048",
                     "--baseline", str(baseline), "--check"]) == 3

    def test_bench_check_without_baseline_is_usage(self, capsys):
        assert main(["bench", "--datasets", "obs_temp",
                     "--n-values", "2048", "--check"]) == 2

    def test_serve_startup_failure_exits_4(self, capsys):
        import socket

        blocker = socket.socket()
        try:
            blocker.bind(("127.0.0.1", 0))
            blocker.listen(1)
            port = blocker.getsockname()[1]
            assert main(["serve", "--port", str(port)]) == 4
        finally:
            blocker.close()
        assert "failed to start" in capsys.readouterr().err

    def test_stats_remote_excludes_local_sources(self, f64_file, capsys):
        assert main(["stats", str(f64_file),
                     "--remote", "127.0.0.1:9"]) == 2
