"""Property-based round-trip suite.

Hypothesis generates float64 streams with the *structured* exponents
PRIMACY exploits (constant fields, smooth fields) and the hostile
corners that break naive byte pipelines (denormals, NaN payloads,
infinities, empty and single-element arrays, byte lengths not divisible
by the word size), then asserts the bit-exact round-trip contract for
every registered codec and for the full PRIMACY pipeline.

Example counts are capped: this suite is a tripwire in the tier-1 run,
not a fuzzing campaign.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.compressors import available_codecs, get_codec
from repro.core.primacy import PrimacyCompressor, PrimacyConfig
from repro.core.idmap import IndexReusePolicy

MAX_VALUES = 192

_FINITE = st.floats(
    min_value=-1e300, max_value=1e300, allow_nan=False, allow_infinity=False
)

_SPECIALS = st.sampled_from(
    [
        0.0,
        -0.0,
        float("inf"),
        float("-inf"),
        float("nan"),
        np.float64(np.uint64(0x7FF800000000BEEF).view(np.float64)),  # NaN payload
        5e-324,  # smallest denormal
        -5e-324,
        2.2250738585072009e-308,  # largest denormal
        1.7976931348623157e308,  # largest finite
    ]
)


@st.composite
def constant_field(draw) -> np.ndarray:
    """One value repeated: a single exponent, maximally mappable."""
    value = draw(st.one_of(_FINITE, _SPECIALS))
    n = draw(st.integers(min_value=1, max_value=MAX_VALUES))
    return np.full(n, value, dtype="<f8")


@st.composite
def smooth_field(draw) -> np.ndarray:
    """Random-walk field: few distinct exponents, like simulation data."""
    n = draw(st.integers(min_value=1, max_value=MAX_VALUES))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    scale = draw(st.sampled_from([1e-6, 1.0, 1e6]))
    rng = np.random.default_rng(seed)
    return (np.cumsum(rng.normal(size=n)) * scale + 300.0).astype("<f8")


@st.composite
def hostile_field(draw) -> np.ndarray:
    """Specials mixed into finite data: denormals, NaN payloads, infs."""
    values = draw(
        st.lists(
            st.one_of(_FINITE, _SPECIALS), min_size=0, max_size=MAX_VALUES
        )
    )
    return np.asarray(values, dtype="<f8")


@st.composite
def double_stream(draw) -> bytes:
    """Bytes of a float64 field, optionally with a ragged tail."""
    arr = draw(st.one_of(constant_field(), smooth_field(), hostile_field()))
    data = arr.tobytes()
    # Lengths not divisible by 8 must round-trip too (writer tails).
    trim = draw(st.integers(min_value=0, max_value=7))
    return data[: len(data) - trim] if trim <= len(data) else data


_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.mark.parametrize("codec_name", available_codecs())
class TestCodecRoundTrip:
    @given(data=double_stream())
    @_SETTINGS
    def test_bit_exact_roundtrip(self, codec_name, data):
        codec = get_codec(codec_name)
        assert codec.decompress(codec.compress(data)) == data

    @given(arr=constant_field())
    @_SETTINGS
    def test_constant_field_roundtrip(self, codec_name, arr):
        codec = get_codec(codec_name)
        data = arr.tobytes()
        assert codec.decompress(codec.compress(data)) == data


class TestPipelineRoundTrip:
    @given(data=double_stream())
    @_SETTINGS
    def test_default_pipeline(self, data):
        comp = PrimacyCompressor(PrimacyConfig(chunk_bytes=4096))
        out, _ = comp.compress(data)
        assert comp.decompress(out) == data

    @given(
        arr=st.one_of(smooth_field(), hostile_field()),
        policy=st.sampled_from(list(IndexReusePolicy)),
    )
    @_SETTINGS
    def test_every_index_policy(self, arr, policy):
        data = arr.tobytes()
        comp = PrimacyCompressor(
            PrimacyConfig(chunk_bytes=2048, index_policy=policy)
        )
        out, _ = comp.compress(data)
        assert comp.decompress(out) == data

    @given(arr=hostile_field())
    @_SETTINGS
    def test_storage_roundtrip(self, arr):
        import io

        from repro.storage import PrimacyFileReader, PrimacyFileWriter

        data = arr.tobytes()
        buf = io.BytesIO()
        with PrimacyFileWriter(
            buf, PrimacyConfig(chunk_bytes=2048), durable=False
        ) as writer:
            writer.write(data)
        buf.seek(0)
        with PrimacyFileReader(buf) as reader:
            assert reader.read_all() == data
