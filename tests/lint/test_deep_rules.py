"""Deep rules (PL101..PL104) over their fixtures plus src regressions.

This file doubles as the equivalence-test anchor for the PL104 good
fixture: it names ParityCodec together with its reference backend, so
the kernel-parity rule sees the pair as covered.
"""

import ast
import textwrap
from pathlib import Path

import pytest

from repro.lint import lint_paths
from repro.lint.rules import all_rules, deep_rules

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"
SRC = REPO_ROOT / "src"

DEEP_CODES = ("PL101", "PL102", "PL103", "PL104")


def run_deep_rule(code, paths, project_root=REPO_ROOT):
    return lint_paths(
        paths,
        all_rules() + deep_rules(),
        select=[code],
        project_root=project_root,
    )


def test_deep_rules_registered_once():
    codes = [rule.code for rule in deep_rules()]
    assert codes == list(DEEP_CODES)
    shallow = {rule.code for rule in all_rules()}
    assert shallow.isdisjoint(codes)


@pytest.mark.parametrize("code", DEEP_CODES)
def test_bad_fixture_is_flagged(code):
    fixture = FIXTURES / f"{code.lower()}_bad.py"
    findings = run_deep_rule(code, [fixture])
    assert findings, f"{fixture.name} should trip {code}"
    assert {f.rule for f in findings} == {code}


@pytest.mark.parametrize("code", DEEP_CODES)
def test_good_fixture_is_clean(code):
    fixture = FIXTURES / f"{code.lower()}_good.py"
    findings = run_deep_rule(code, [fixture])
    assert findings == [], [f.message for f in findings]


def test_pl101_flags_every_leak_shape():
    findings = run_deep_rule("PL101", [FIXTURES / "pl101_bad.py"])
    # One finding per leaking function, none doubled up.
    assert len(findings) == 5
    assert len({f.line for f in findings}) == 5


def test_pl103_names_both_functions():
    findings = run_deep_rule("PL103", [FIXTURES / "pl103_bad.py"])
    messages = " ".join(f.message for f in findings)
    assert "encode_record" in messages and "decode_record" in messages
    assert "encode_frame" in messages and "decode_frame" in messages


# -- src regressions ------------------------------------------------------
#
# Both bugs below were found by running the deep rules over src and are
# fixed in the same change that introduced the rules.  The stripped-copy
# tests prove the rule still catches the original defect; the direct
# runs pin the fixed files clean.


def test_worker_attach_no_longer_leaks_on_track_failure():
    # parallel/engine.py: track_segment() runs inside the try whose
    # finally closes the worker-side mapping.
    findings = run_deep_rule("PL101", [SRC / "repro" / "parallel" / "engine.py"])
    assert findings == [], [f.message for f in findings]


def test_pl101_catches_pre_fix_worker_attach_shape(tmp_path):
    # The worker loop's outer except ships errors and keeps serving, so
    # a raise from track() between the attach and the protecting
    # try/finally leaks the mapping for the process's lifetime.
    shape = tmp_path / "worker.py"
    shape.write_text(
        textwrap.dedent(
            """
            from multiprocessing.shared_memory import SharedMemory

            def worker_loop(conn, ledger):
                while True:
                    task = conn.recv()
                    try:
                        shm = SharedMemory(name=task)
                        ledger.track(shm.name, shm.size)
                        try:
                            data = bytes(shm.buf[:8])
                        finally:
                            shm.close()
                        conn.send(data)
                    except Exception as exc:
                        conn.send(exc)
            """
        ),
        encoding="utf-8",
    )
    findings = run_deep_rule("PL101", [shape], project_root=tmp_path)
    assert len(findings) == 1
    assert "shm" in findings[0].message


def test_ledger_lock_has_at_fork_reinitializer():
    # lint/sanitize.py: _LEDGER_LOCK is reachable from the pool worker,
    # so the module must install an os.register_at_fork hook.
    findings = run_deep_rule(
        "PL102",
        [SRC / "repro" / "lint" / "sanitize.py", SRC / "repro" / "parallel"],
    )
    assert findings == [], [f.message for f in findings]


def test_pl102_catches_pre_fix_ledger_lock_shape(tmp_path):
    source = (SRC / "repro" / "lint" / "sanitize.py").read_text(
        encoding="utf-8"
    )
    assert "register_at_fork" in source
    tree = ast.parse(source)
    kept = [
        node
        for node in tree.body
        if "register_at_fork" not in ast.dump(node)
    ]
    assert len(kept) < len(tree.body)
    tree.body = kept
    stripped = ast.unparse(tree)
    pkg = tmp_path / "repro_lint"
    pkg.mkdir()
    (pkg / "sanitize.py").write_text(stripped, encoding="utf-8")
    engine_src = (SRC / "repro" / "parallel" / "engine.py").read_text(
        encoding="utf-8"
    )
    (pkg / "engine.py").write_text(engine_src, encoding="utf-8")
    findings = run_deep_rule("PL102", [pkg], project_root=tmp_path)
    assert any("_LEDGER_LOCK" in f.message for f in findings), [
        f.message for f in findings
    ]


def test_deep_rules_clean_over_src():
    findings = lint_paths(
        [SRC],
        all_rules() + deep_rules(),
        select=list(DEEP_CODES),
        project_root=REPO_ROOT,
    )
    assert findings == [], [
        f"{f.path}:{f.line} {f.rule} {f.message}" for f in findings
    ]


# -- PL104 test-coverage arm ----------------------------------------------


def _parity_project(tmp_path, with_test):
    src_dir = tmp_path / "src"
    src_dir.mkdir()
    (src_dir / "codec.py").write_text(
        "_BACKENDS = {}\n"
        "\n"
        "def _reference_run(data):\n"
        "    return bytes(data)\n"
        "\n"
        "class FastCodec:\n"
        "    def __init__(self, kernels='batch'):\n"
        "        self.kernels = kernels\n",
        encoding="utf-8",
    )
    if with_test:
        tests_dir = tmp_path / "tests"
        tests_dir.mkdir()
        (tests_dir / "test_codec.py").write_text(
            "def test_fastcodec_matches_reference():\n"
            "    assert FastCodec is not None\n",
            encoding="utf-8",
        )
    return src_dir


def test_pl104_requires_a_single_test_naming_both(tmp_path):
    src_dir = _parity_project(tmp_path, with_test=False)
    findings = run_deep_rule("PL104", [src_dir], project_root=tmp_path)
    assert len(findings) == 1
    assert "FastCodec" in findings[0].message
    assert "test" in findings[0].message


def test_pl104_satisfied_by_twin_plus_test(tmp_path):
    src_dir = _parity_project(tmp_path, with_test=True)
    findings = run_deep_rule("PL104", [src_dir], project_root=tmp_path)
    assert findings == [], [f.message for f in findings]
