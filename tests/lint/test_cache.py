"""Incremental deep-lint cache: hit/miss counters and invalidation."""

import json
import textwrap

import pytest

from repro.lint import CacheStats, LintCache, deep_lint, deep_rules
from repro.lint.cache import rules_signature
from repro.lint.rules import all_rules


@pytest.fixture
def project(tmp_path):
    src = tmp_path / "src"
    src.mkdir()
    (src / "clean.py").write_text(
        "def double(x):\n    return x * 2\n", encoding="utf-8"
    )
    (src / "leaky.py").write_text(
        textwrap.dedent(
            """
            from multiprocessing.shared_memory import SharedMemory

            def peek(name):
                shm = SharedMemory(name=name)
                return bytes(shm.buf[:1])
            """
        ),
        encoding="utf-8",
    )
    return tmp_path


def run(project_root, cache):
    stats = CacheStats()
    findings = deep_lint(
        [project_root / "src"],
        all_rules() + deep_rules(),
        project_root=project_root,
        cache=cache,
        stats=stats,
    )
    return findings, stats


def test_cold_then_warm_run(project):
    cache_path = project / ".lint-cache.json"
    cold, cold_stats = run(project, LintCache(cache_path))
    assert cold_stats.as_dict() == {
        "file_hits": 0,
        "file_misses": 2,
        "project_hit": False,
        "project_ran": True,
    }
    assert "2 miss(es), project phase miss" in cold_stats.summary()
    assert cache_path.exists()

    warm, warm_stats = run(project, LintCache(cache_path))
    assert warm_stats.as_dict() == {
        "file_hits": 2,
        "file_misses": 0,
        "project_hit": True,
        "project_ran": False,
    }
    assert "2 file hit(s), 0 miss(es), project phase hit" in warm_stats.summary()

    # Replayed findings are byte-identical to the live run's (the PL101
    # leak in leaky.py survives the round-trip).
    assert [f.as_dict() for f in warm] == [f.as_dict() for f in cold]
    assert any(f.rule == "PL101" for f in warm)


def test_editing_one_file_misses_only_that_file(project):
    cache_path = project / ".lint-cache.json"
    run(project, LintCache(cache_path))
    (project / "src" / "clean.py").write_text(
        "def triple(x):\n    return x * 3\n", encoding="utf-8"
    )
    _, stats = run(project, LintCache(cache_path))
    assert stats.file_hits == 1
    assert stats.file_misses == 1
    # Any edit anywhere re-runs the interprocedural phase.
    assert stats.project_ran and not stats.project_hit


def test_analysis_version_bump_invalidates_everything(project):
    cache_path = project / ".lint-cache.json"
    run(project, LintCache(cache_path))

    bumped = all_rules() + deep_rules()
    for rule in bumped:
        if rule.code == "PL101":
            rule.analysis_version = rule.analysis_version + 1
    stats = CacheStats()
    deep_lint(
        [project / "src"],
        bumped,
        project_root=project,
        cache=LintCache(cache_path),
        stats=stats,
    )
    # PL101 is a per-module rule: every per-file entry is stale, while
    # the untouched project-rule signature still hits.
    assert stats.file_misses == 2
    assert stats.project_hit


def test_rules_signature_tracks_code_and_version():
    rules = deep_rules()
    base = rules_signature(rules)
    assert base == rules_signature(deep_rules())
    rules[0].analysis_version += 1
    assert rules_signature(rules) != base
    assert rules_signature(rules[1:]) != base


def test_corrupt_cache_is_an_empty_cache(project):
    cache_path = project / ".lint-cache.json"
    cache_path.write_text("{not json", encoding="utf-8")
    _, stats = run(project, LintCache(cache_path))
    assert stats.file_misses == 2
    # The corrupt file was overwritten with a valid cache.
    payload = json.loads(cache_path.read_text(encoding="utf-8"))
    assert payload["version"] == 1
    assert set(payload["files"]) == {"src/clean.py", "src/leaky.py"}


def test_stale_cache_version_ignored(project):
    cache_path = project / ".lint-cache.json"
    run(project, LintCache(cache_path))
    payload = json.loads(cache_path.read_text(encoding="utf-8"))
    payload["version"] = 999
    cache_path.write_text(json.dumps(payload), encoding="utf-8")
    _, stats = run(project, LintCache(cache_path))
    assert stats.file_misses == 2


def test_no_cache_still_counts(project):
    findings, stats = run(project, None)
    assert stats.file_misses == 2
    assert stats.project_ran
    assert any(f.rule == "PL101" for f in findings)


def test_syntax_error_file_is_cached(project):
    (project / "src" / "broken.py").write_text("def (\n", encoding="utf-8")
    cache_path = project / ".lint-cache.json"
    cold, cold_stats = run(project, LintCache(cache_path))
    assert any(f.rule == "PL000" for f in cold)
    warm, warm_stats = run(project, LintCache(cache_path))
    assert warm_stats.file_hits == 3
    assert any(f.rule == "PL000" for f in warm)
