"""Framework behaviour: suppressions, filtering, baselines, output formats."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint import (
    LintError,
    Severity,
    format_findings_json,
    format_findings_text,
    lint_paths,
    load_baseline,
    write_baseline,
)

FIXTURES = Path(__file__).parent / "fixtures"

BAD_SOURCE = """\
def decode_record(data):
    try:
        return data[0]
    except Exception:
        return None
"""


def write_module(tmp_path: Path, source: str, name: str = "mod.py") -> Path:
    path = tmp_path / name
    path.write_text(source)
    return path


def test_same_line_suppression(tmp_path):
    path = write_module(
        tmp_path,
        BAD_SOURCE.replace(
            "except Exception:",
            "except Exception:  # primacy-lint: disable=PL001 -- intentional",
        ),
    )
    assert lint_paths([path], select=["PL001"], project_root=tmp_path) == []


def test_suppression_for_other_rule_does_not_apply(tmp_path):
    path = write_module(
        tmp_path,
        BAD_SOURCE.replace(
            "except Exception:",
            "except Exception:  # primacy-lint: disable=PL002",
        ),
    )
    findings = lint_paths([path], select=["PL001"], project_root=tmp_path)
    assert len(findings) == 1


def test_file_level_suppression(tmp_path):
    path = write_module(
        tmp_path, "# primacy-lint: disable-file=PL001\n" + BAD_SOURCE
    )
    assert lint_paths([path], select=["PL001"], project_root=tmp_path) == []


def test_disable_all_suppression(tmp_path):
    path = write_module(
        tmp_path,
        BAD_SOURCE.replace(
            "except Exception:",
            "except Exception:  # primacy-lint: disable=all",
        ),
    )
    assert lint_paths([path], project_root=tmp_path) == []


def test_select_and_ignore(tmp_path):
    path = write_module(tmp_path, BAD_SOURCE)
    assert lint_paths([path], select=["PL002"], project_root=tmp_path) == []
    assert lint_paths([path], ignore=["PL001"], project_root=tmp_path) == []
    findings = lint_paths([path], select=["PL001"], project_root=tmp_path)
    assert [f.rule for f in findings] == ["PL001"]


def test_unknown_rule_code_raises(tmp_path):
    path = write_module(tmp_path, "x = 1\n")
    with pytest.raises(LintError):
        lint_paths([path], select=["PL999"], project_root=tmp_path)
    with pytest.raises(LintError):
        lint_paths([path], ignore=["bogus"], project_root=tmp_path)


def test_missing_path_raises(tmp_path):
    with pytest.raises(LintError):
        lint_paths([tmp_path / "nope.py"], project_root=tmp_path)


def test_syntax_error_is_reported_not_raised(tmp_path):
    path = write_module(tmp_path, "def broken(:\n")
    findings = lint_paths([path], project_root=tmp_path)
    assert len(findings) == 1
    assert findings[0].rule == "PL000"
    assert findings[0].severity is Severity.ERROR


def test_fingerprint_is_line_independent(tmp_path):
    a = write_module(tmp_path, BAD_SOURCE, "a.py")
    b = write_module(tmp_path, "\n\n\n" + BAD_SOURCE, "b.py")
    fa = lint_paths([a], project_root=tmp_path)[0]
    fb = lint_paths([b], project_root=tmp_path)[0]
    assert fa.line != fb.line
    # Same message + rule, different file -> different fingerprints.
    assert fa.fingerprint != fb.fingerprint
    # Re-linting the same file reproduces the same fingerprint.
    assert fa.fingerprint == lint_paths([a], project_root=tmp_path)[0].fingerprint


def test_baseline_demotes_known_findings(tmp_path):
    path = write_module(tmp_path, BAD_SOURCE)
    findings = lint_paths([path], project_root=tmp_path)
    assert findings and findings[0].severity is Severity.ERROR

    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, findings)
    baseline = load_baseline(baseline_path)
    demoted = lint_paths([path], project_root=tmp_path, baseline=baseline)
    assert demoted and all(f.severity is Severity.WARNING for f in demoted)

    # A new *kind* of violation in the same file is NOT demoted.
    extra = BAD_SOURCE.replace("decode_record", "decode_other").replace(
        "except Exception:", "except:"
    )
    path.write_text(BAD_SOURCE + "\n\n" + extra)
    again = lint_paths([path], project_root=tmp_path, baseline=baseline)
    severities = sorted(f.severity.name for f in again)
    assert "ERROR" in severities and "WARNING" in severities


def test_load_baseline_rejects_garbage(tmp_path):
    bogus = tmp_path / "baseline.json"
    bogus.write_text("not json at all{{{")
    with pytest.raises(LintError):
        load_baseline(bogus)


def test_text_output_shape(tmp_path):
    path = write_module(tmp_path, BAD_SOURCE)
    findings = lint_paths([path], project_root=tmp_path)
    text = format_findings_text(findings)
    assert "PL001" in text
    assert text.strip().endswith("1 error(s), 0 warning(s)")


def test_json_output_shape(tmp_path):
    path = write_module(tmp_path, BAD_SOURCE)
    findings = lint_paths([path], project_root=tmp_path)
    payload = json.loads(format_findings_json(findings))
    assert payload["summary"] == {"errors": 1, "warnings": 0, "total": 1}
    record = payload["findings"][0]
    assert record["rule"] == "PL001"
    assert record["severity"] == "error"
    assert record["line"] == 4
    assert record["fingerprint"] == findings[0].fingerprint


def test_directory_walk_skips_hidden_and_cache(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    write_module(pkg, BAD_SOURCE, "visible.py")
    cache = pkg / "__pycache__"
    cache.mkdir()
    write_module(cache, BAD_SOURCE, "cached.py")
    hidden = pkg / ".hidden"
    hidden.mkdir()
    write_module(hidden, BAD_SOURCE, "secret.py")
    findings = lint_paths([pkg], project_root=tmp_path)
    assert len(findings) == 1
    assert findings[0].path.endswith("visible.py")
