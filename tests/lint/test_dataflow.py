"""Worklist solver semantics pinned on the shipped analyses."""

import ast
import textwrap

from repro.lint.cfg import build_cfg
from repro.lint.dataflow import (
    DataflowProblem,
    Liveness,
    ReachingDefinitions,
    solve,
    statement_defs,
    statement_uses,
)


def make_cfg(src, **kwargs):
    tree = ast.parse(textwrap.dedent(src))
    return build_cfg(tree.body[0], **kwargs)


def node_for(cfg, predicate):
    (node,) = [n for n in cfg.statement_nodes() if predicate(n.stmt)]
    return node


def assign_to(name):
    def predicate(stmt):
        return (
            isinstance(stmt, ast.Assign)
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id == name
        )

    return predicate


# -- def/use extraction --------------------------------------------------


def stmt(src):
    return ast.parse(textwrap.dedent(src)).body[0]


def test_statement_defs_tuple_unpack():
    assert statement_defs(stmt("x, (y, *z) = p")) == {"x", "y", "z"}


def test_statement_defs_augassign_and_walrus():
    assert statement_defs(stmt("total += n")) == {"total"}
    assert statement_defs(stmt("if (m := g(v)):\n    pass")) == {"m"}


def test_statement_defs_with_as_and_for_target():
    assert statement_defs(stmt("with open(p) as fh:\n    pass")) == {"fh"}
    assert statement_defs(stmt("for a, b in items:\n    pass")) == {"a", "b"}


def test_statement_uses_loads_only():
    uses = statement_uses(stmt("x = f(a, b) + x"))
    assert uses == {"f", "a", "b", "x"}


# -- reaching definitions ------------------------------------------------


def test_reaching_defs_straight_line_kill():
    cfg = make_cfg(
        """
        def f():
            x = 1
            x = 2
            y = x
        """
    )
    sol = solve(cfg, ReachingDefinitions(cfg))
    first = node_for(cfg, lambda s: getattr(s, "lineno", 0) == cfg.func.lineno + 1)
    use = node_for(cfg, assign_to("y"))
    reaching = {idx for name, idx in sol.entering(use) if name == "x"}
    # Only the second definition survives; the first was killed.
    assert reaching == {node_for(cfg, lambda s: s.lineno == first.lineno + 1).index}


def test_reaching_defs_merge_at_join():
    cfg = make_cfg(
        """
        def f(c):
            if c:
                x = 1
            else:
                x = 2
            y = x
        """
    )
    sol = solve(cfg, ReachingDefinitions(cfg))
    use = node_for(cfg, assign_to("y"))
    reaching = {idx for name, idx in sol.entering(use) if name == "x"}
    assert len(reaching) == 2  # may-analysis: both branch defs reach


def test_reaching_defs_params_defined_at_entry():
    cfg = make_cfg(
        """
        def f(a, *rest, **extra):
            return a
        """
    )
    sol = solve(cfg, ReachingDefinitions(cfg))
    ret = node_for(cfg, lambda s: isinstance(s, ast.Return))
    names = {name for name, _ in sol.entering(ret)}
    assert names == {"a", "rest", "extra"}


def test_reaching_defs_loop_carried():
    cfg = make_cfg(
        """
        def f(items):
            acc = 0
            for it in items:
                acc = acc + it
            return acc
        """
    )
    sol = solve(cfg, ReachingDefinitions(cfg))
    ret = node_for(cfg, lambda s: isinstance(s, ast.Return))
    acc_defs = {idx for name, idx in sol.entering(ret) if name == "acc"}
    # Both the init and the loop-body rebind reach the return.
    assert len(acc_defs) == 2


# -- liveness ------------------------------------------------------------


def test_liveness_dead_after_last_use():
    cfg = make_cfg(
        """
        def f(a):
            b = a + 1
            c = b * 2
            return c
        """
    )
    sol = solve(cfg, Liveness(cfg))
    def_b = node_for(cfg, assign_to("b"))
    def_c = node_for(cfg, assign_to("c"))
    assert "a" in sol.entering(def_b)
    assert "a" not in sol.leaving(def_b)  # last use of a
    assert "b" not in sol.leaving(def_c)  # b is dead once c exists


def test_liveness_self_reference_keeps_use():
    cfg = make_cfg(
        """
        def f(x):
            x = x + 1
            return x
        """
    )
    sol = solve(cfg, Liveness(cfg))
    rebind = node_for(cfg, assign_to("x"))
    # gen is applied after kill: the read of the old x stays live in.
    assert "x" in sol.entering(rebind)


def test_liveness_covers_exception_path():
    cfg = make_cfg(
        """
        def f(log):
            msg = "boom"
            try:
                work()
            except ValueError:
                log(msg)
            return None
        """
    )
    sol = solve(cfg, Liveness(cfg))
    def_msg = node_for(cfg, assign_to("msg"))
    # msg is only used on the handler path; liveness must see it.
    assert "msg" in sol.leaving(def_msg)


# -- must-analysis semantics ---------------------------------------------


class _DefinitelyAssigned(DataflowProblem):
    """Forward must-analysis: names assigned on every path so far."""

    direction = "forward"
    may = False

    def __init__(self, cfg):
        self._cfg = cfg
        self._all = frozenset().union(
            *(statement_defs(n.stmt) for n in cfg.nodes)
        )

    def gen(self, node):
        return statement_defs(node.stmt)

    def kill(self, node):
        return frozenset()

    def universe(self):
        return self._all


def test_must_analysis_intersects_at_join():
    cfg = make_cfg(
        """
        def f(c):
            if c:
                x = 1
            else:
                y = 2
            z = 3
        """
    )
    sol = solve(cfg, _DefinitelyAssigned(cfg))
    z_node = node_for(cfg, assign_to("z"))
    entering = sol.entering(z_node)
    # Neither x nor y is assigned on *both* branches.
    assert "x" not in entering
    assert "y" not in entering
    assert "z" in sol.leaving(z_node)


def test_must_analysis_keeps_fact_when_all_paths_agree():
    cfg = make_cfg(
        """
        def f(c):
            if c:
                x = 1
            else:
                x = 2
            z = x
        """
    )
    sol = solve(cfg, _DefinitelyAssigned(cfg))
    z_node = node_for(cfg, assign_to("z"))
    assert "x" in sol.entering(z_node)
