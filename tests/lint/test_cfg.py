"""CFG builder tests on adversarial control-flow shapes."""

import ast
import textwrap

import pytest

from repro.lint.cfg import (
    EDGE_EXCEPTION,
    EDGE_NORMAL,
    build_cfg,
)


def make_cfg(src, **kwargs):
    tree = ast.parse(textwrap.dedent(src))
    func = tree.body[0]
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    return build_cfg(func, **kwargs)


def reaches(src_node, dst_node):
    """Whether ``dst_node`` is reachable from ``src_node`` via succs."""
    seen = set()
    stack = [src_node]
    while stack:
        node = stack.pop()
        if node is dst_node:
            return True
        if node in seen:
            continue
        seen.add(node)
        stack.extend(n for n, _ in node.succs)
    return False


def nodes_at(cfg, lineno, label=None):
    return [
        n
        for n in cfg.nodes
        if n.lineno == lineno and (label is None or n.label == label)
    ]


def line_of(cfg, needle):
    source = ast.unparse(cfg.func)
    for offset, text in enumerate(source.splitlines()):
        if needle in text:
            return cfg.func.lineno + offset
    raise AssertionError(f"{needle!r} not in function source")


def test_linear_body_chains_to_exit():
    cfg = make_cfg(
        """
        def f(a):
            b = a + 1
            c = b * 2
            return c
        """
    )
    assert reaches(cfg.entry, cfg.exit)
    # No declared exception flow: the raise exit is unreachable.
    assert cfg.raise_exit not in cfg.reachable()


def test_raise_edges_to_raise_exit():
    cfg = make_cfg(
        """
        def f(a):
            if a < 0:
                raise ValueError(a)
            return a
        """
    )
    (raise_node,) = [
        n for n in cfg.statement_nodes() if isinstance(n.stmt, ast.Raise)
    ]
    assert raise_node.successors(EDGE_EXCEPTION) == [cfg.raise_exit]
    assert raise_node.successors(EDGE_NORMAL) == []


def test_code_after_return_is_unreachable():
    cfg = make_cfg(
        """
        def f():
            return 1
            x = 2
        """
    )
    reachable = cfg.reachable()
    (dead,) = [
        n for n in cfg.statement_nodes() if isinstance(n.stmt, ast.Assign)
    ]
    assert dead not in reachable
    assert cfg.exit in reachable


def test_early_return_and_continue_in_loop():
    cfg = make_cfg(
        """
        def f(items):
            for it in items:
                if it > 0:
                    return it
                continue
            return None
        """
    )
    (head,) = [n for n in cfg.nodes if n.label == "loop-head"]
    (ret_in_loop, _ret_tail) = sorted(
        (n for n in cfg.statement_nodes() if isinstance(n.stmt, ast.Return)),
        key=lambda n: n.lineno,
    )
    (cont,) = [
        n for n in cfg.statement_nodes() if isinstance(n.stmt, ast.Continue)
    ]
    assert ret_in_loop.successors(EDGE_NORMAL) == [cfg.exit]
    assert cont.successors(EDGE_NORMAL) == [head]


def test_break_targets_loop_after():
    cfg = make_cfg(
        """
        def f(items):
            while True:
                if not items:
                    break
                items.pop()
            return items
        """
    )
    (after,) = [n for n in cfg.nodes if n.label == "loop-after"]
    (brk,) = [
        n for n in cfg.statement_nodes() if isinstance(n.stmt, ast.Break)
    ]
    assert brk.successors(EDGE_NORMAL) == [after]


def test_try_finally_duplicates_suite_per_continuation():
    cfg = make_cfg(
        """
        def f():
            try:
                x = risky()
                return x
            finally:
                cleanup()
        """
    )
    cleanup_line = line_of(cfg, "cleanup()")
    copies = [
        n
        for n in cfg.statement_nodes()
        if n.lineno == cleanup_line and isinstance(n.stmt, ast.Expr)
    ]
    # One copy on the return continuation, one on the exception path.
    assert len(copies) == 2
    assert any(reaches(c, cfg.exit) and not reaches(c, cfg.raise_exit) for c in copies)
    assert any(reaches(c, cfg.raise_exit) and not reaches(c, cfg.exit) for c in copies)


def test_nested_try_finally_runs_inner_then_outer():
    cfg = make_cfg(
        """
        def f():
            try:
                try:
                    return work()
                finally:
                    inner()
            finally:
                outer()
        """
    )
    inner_line = line_of(cfg, "inner()")
    outer_line = line_of(cfg, "outer()")
    inner_nodes = [
        n for n in cfg.statement_nodes() if n.lineno == inner_line
    ]
    outer_nodes = [
        n for n in cfg.statement_nodes() if n.lineno == outer_line
    ]
    # Every path to the normal exit passes inner -> outer: some inner
    # copy reaches an outer copy which reaches the exit, and no inner
    # copy reaches the exit without an outer copy in between.
    on_exit_path = [n for n in inner_nodes if reaches(n, cfg.exit)]
    assert on_exit_path
    for inner_node in on_exit_path:
        assert any(
            reaches(inner_node, outer_node) and reaches(outer_node, cfg.exit)
            for outer_node in outer_nodes
        )


def test_with_cleanup_guards_exception_and_return_paths():
    cfg = make_cfg(
        """
        def f(path):
            with open(path) as fh:
                if fh.read():
                    return 1
                raise ValueError(path)
        """
    )
    cleanups = [n for n in cfg.nodes if n.label == "with-cleanup"]
    assert cleanups
    (raise_node,) = [
        n for n in cfg.statement_nodes() if isinstance(n.stmt, ast.Raise)
    ]
    (ret_node,) = [
        n for n in cfg.statement_nodes() if isinstance(n.stmt, ast.Return)
    ]
    # Both the raise and the return route through __exit__ first.
    assert all(s.label == "with-cleanup" for s in raise_node.successors())
    assert all(s.label == "with-cleanup" for s in ret_node.successors())
    assert reaches(raise_node, cfg.raise_exit)
    assert reaches(ret_node, cfg.exit)


def test_bare_raise_reraise_in_handler_propagates():
    cfg = make_cfg(
        """
        def f():
            try:
                work()
            except ValueError:
                log()
                raise
            return 1
        """
    )
    (reraise,) = [
        n for n in cfg.statement_nodes() if isinstance(n.stmt, ast.Raise)
    ]
    assert reaches(reraise, cfg.raise_exit)
    assert not reaches(reraise, cfg.exit)
    # A ValueError handler is not catch-all: the dispatch node keeps an
    # escape edge for unmatched exception types.
    (dispatch,) = [n for n in cfg.nodes if n.label == "except-dispatch"]
    assert any(
        kind == EDGE_EXCEPTION and reaches(succ, cfg.raise_exit)
        for succ, kind in dispatch.succs
    )


def test_catch_all_handler_stops_propagation():
    cfg = make_cfg(
        """
        def f():
            try:
                work()
            except Exception:
                return None
            return 1
        """
    )
    assert cfg.raise_exit not in cfg.reachable()


def test_try_orelse_skips_this_trys_handlers():
    cfg = make_cfg(
        """
        def f():
            try:
                x = work()
            except ValueError:
                return None
            else:
                raise RuntimeError(x)
        """
    )
    (raise_node,) = [
        n for n in cfg.statement_nodes() if isinstance(n.stmt, ast.Raise)
    ]
    # The orelse raise must not loop back into the except dispatch.
    (dispatch,) = [n for n in cfg.nodes if n.label == "except-dispatch"]
    assert dispatch not in raise_node.successors()
    assert reaches(raise_node, cfg.raise_exit)


def test_implicit_raises_modes():
    src = """
        def f(a):
            b = g(a)
            return b
    """
    cfg_none = make_cfg(src)
    cfg_calls = make_cfg(src, implicit_raises="calls")
    call_none = [
        n for n in cfg_none.statement_nodes() if isinstance(n.stmt, ast.Assign)
    ][0]
    call_strict = [
        n
        for n in cfg_calls.statement_nodes()
        if isinstance(n.stmt, ast.Assign)
    ][0]
    assert call_none.successors(EDGE_EXCEPTION) == []
    assert call_strict.successors(EDGE_EXCEPTION) == [cfg_calls.raise_exit]


def test_invalid_implicit_raises_rejected():
    with pytest.raises(ValueError):
        make_cfg("def f():\n    pass\n", implicit_raises="always")


def test_match_without_wildcard_keeps_fallthrough():
    cfg = make_cfg(
        """
        def f(cmd):
            match cmd:
                case "go":
                    return 1
                case _:
                    return 2
        """
    )
    (subject,) = [n for n in cfg.nodes if n.label == "match"]
    joins = [n for n in cfg.nodes if n.label == "match-join"]
    # Wildcard case present: no direct subject -> join fallthrough.
    assert all(join not in subject.successors() for join in joins)
