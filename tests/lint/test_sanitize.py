"""Runtime sanitizer: ledger bookkeeping and parallel-engine integration."""

from __future__ import annotations

import warnings
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.lint import sanitize
from repro.lint.sanitize import ResourceLedger, SanitizeLeakWarning


@pytest.fixture(autouse=True)
def _clean_global_ledger():
    sanitize.reset()
    yield
    sanitize.reset()


class TestEnabled:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert not sanitize.enabled()
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert not sanitize.enabled()

    def test_enabled_by_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitize.enabled()


class TestLedger:
    def test_track_untrack_segments(self):
        led = ResourceLedger()
        led.track_segment("seg-a", 1024, origin="test", owner=1)
        led.track_segment("seg-b", 2048, origin="test", owner=2)
        assert {r.name for r in led.live_segments()} == {"seg-a", "seg-b"}
        assert {r.name for r in led.live_segments(owner=1)} == {"seg-a"}
        led.untrack_segment("seg-a")
        assert {r.name for r in led.live_segments()} == {"seg-b"}

    def test_report_warns_on_leaks(self):
        led = ResourceLedger()
        led.track_segment("leaked", 4096, origin="test", owner=0)
        with pytest.warns(SanitizeLeakWarning, match="leaked"):
            messages = led.report("unit test")
        assert len(messages) == 1

    def test_report_silent_when_clean(self):
        led = ResourceLedger()
        led.track_segment("seg", 64, origin="test", owner=0)
        led.untrack_segment("seg")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert led.report("unit test") == []

    def test_tracked_view_releases(self):
        led = ResourceLedger()
        shm = shared_memory.SharedMemory(create=True, size=4096)
        try:
            with led.tracked_view(shm, origin="test") as buf:
                buf[:3] = b"abc"
                assert led.live_views()
            assert led.live_views() == []
            assert bytes(shm.buf[:3]) == b"abc"
        finally:
            shm.close()
            shm.unlink()

    def test_tracked_view_releases_on_error(self):
        led = ResourceLedger()
        shm = shared_memory.SharedMemory(create=True, size=64)
        try:
            with pytest.raises(RuntimeError):
                with led.tracked_view(shm, origin="test"):
                    raise RuntimeError("boom")
            assert led.live_views() == []
        finally:
            shm.close()
            shm.unlink()

    def test_clear(self):
        led = ResourceLedger()
        led.track_segment("seg", 64, origin="test", owner=0)
        led.clear()
        assert led.live_segments() == []


class TestEngineIntegration:
    """REPRO_SANITIZE=1 parallel-engine runs must report zero leaks."""

    @pytest.fixture
    def payload(self, rng):
        # Larger than the engine's small-payload pickle threshold so the
        # SharedMemory fan-out path is exercised.
        return np.asarray(rng.normal(size=16384), dtype="<f8").tobytes()

    def test_engine_round_trip_leaves_no_leaks(self, monkeypatch, payload):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        from repro.core.primacy import PrimacyConfig
        from repro.parallel.pool import ParallelCompressor
        from repro.parallel.decompress import ParallelDecompressor

        cfg = PrimacyConfig(chunk_bytes=16 * 1024)
        with warnings.catch_warnings():
            warnings.simplefilter("error", SanitizeLeakWarning)
            with ParallelCompressor(cfg, workers=2) as comp:
                out, _ = comp.compress(payload)
            with ParallelDecompressor(cfg, workers=2) as dec:
                assert dec.decompress(out) == payload
        assert sanitize.ledger().live_segments() == []
        assert sanitize.ledger().live_views() == []

    def test_engine_close_reports_deliberate_leak(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        from repro.core.primacy import PrimacyConfig
        from repro.parallel.engine import ParallelEngine

        cfg = PrimacyConfig(chunk_bytes=16 * 1024)
        engine = ParallelEngine(cfg, workers=1)
        # Simulate a segment the engine lost track of.
        sanitize.ledger().track_segment(
            "phantom-seg", 4096, origin="test", owner=id(engine)
        )
        with pytest.warns(SanitizeLeakWarning, match="phantom-seg"):
            engine.close()

    def test_disabled_engine_does_not_touch_ledger(self, monkeypatch, payload):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        from repro.core.primacy import PrimacyConfig
        from repro.parallel.pool import ParallelCompressor

        cfg = PrimacyConfig(chunk_bytes=16 * 1024)
        with ParallelCompressor(cfg, workers=2) as comp:
            comp.compress(payload)
        assert sanitize.ledger().live_segments() == []
        assert sanitize.ledger().live_views() == []
