"""ProjectIndex tests: symbol tables, call graph, reachability."""

import textwrap

import pytest

from repro.lint.engine import load_module
from repro.lint.project import ProjectIndex


def build_project(tmp_path, files):
    contexts = []
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        loaded = load_module(path, tmp_path)
        assert not hasattr(loaded, "rule"), f"parse failure in {relpath}"
        contexts.append(loaded)
    return ProjectIndex(contexts)


@pytest.fixture
def project(tmp_path):
    return build_project(
        tmp_path,
        {
            "pkg/codec.py": """
                from pkg.util import helper as aliased

                MAGIC = b"PRIF"
                VERSION = 2
                LABEL = "fmt"

                def encode(data):
                    return aliased(data) + MAGIC

                class Writer:
                    def flush(self):
                        return self.render()

                    def render(self):
                        return encode(b"")
                """,
            "pkg/util.py": """
                def helper(data):
                    return bytes(data)

                def render():
                    return "other render"
                """,
        },
    )


def test_functions_keyed_by_qualname(project):
    assert set(project.functions) == {
        "pkg/codec.py::encode",
        "pkg/codec.py::Writer.flush",
        "pkg/codec.py::Writer.render",
        "pkg/util.py::helper",
        "pkg/util.py::render",
    }
    flush = project.functions["pkg/codec.py::Writer.flush"]
    assert flush.name == "flush"
    assert flush.class_name == "Writer"


def test_module_constants_and_imports(project):
    info = project.module("pkg/codec.py")
    assert info.constants == {"MAGIC": b"PRIF", "VERSION": 2, "LABEL": "fmt"}
    assert info.constant_bytes_len("MAGIC") == 4
    assert info.constant_bytes_len("LABEL") == 3
    assert info.constant_bytes_len("VERSION") is None
    assert info.constant_bytes_len("MISSING") is None
    assert info.imports["aliased"] == "pkg.util.helper"


def test_callees_are_bare_names(project):
    encode = project.functions["pkg/codec.py::encode"]
    assert encode.callees == {"aliased"}
    flush = project.functions["pkg/codec.py::Writer.flush"]
    assert flush.callees == {"render"}


def test_self_call_prefers_own_class_method(project):
    flush = project.functions["pkg/codec.py::Writer.flush"]
    resolved = project.resolve_callees(flush)
    # render exists both as a Writer method and a free function in
    # util.py; the self-call resolves to the method only.
    assert [fn.qualname for fn in resolved] == [
        "pkg/codec.py::Writer.render"
    ]


def test_functions_named_fans_out(project):
    names = {fn.qualname for fn in project.functions_named("render")}
    assert names == {
        "pkg/codec.py::Writer.render",
        "pkg/util.py::render",
    }
    assert project.functions_named("nope") == []


def test_reachable_from_transitive_closure(project):
    flush = project.functions["pkg/codec.py::Writer.flush"]
    reached = {fn.qualname for fn in project.reachable_from([flush])}
    # flush -> Writer.render -> encode -> helper (via the alias the
    # index cannot see through -- "aliased" matches no definition, so
    # helper is only reached if the name resolves; it does not).
    assert "pkg/codec.py::Writer.flush" in reached
    assert "pkg/codec.py::Writer.render" in reached
    assert "pkg/codec.py::encode" in reached


def test_reachable_from_handles_cycles(tmp_path):
    project = build_project(
        tmp_path,
        {
            "a.py": """
                def ping():
                    return pong()

                def pong():
                    return ping()
                """,
        },
    )
    entry = project.functions["a.py::ping"]
    reached = {fn.name for fn in project.reachable_from([entry])}
    assert reached == {"ping", "pong"}


def test_test_files_scans_tests_tree(tmp_path):
    project = build_project(tmp_path, {"pkg/mod.py": "X = 1\n"})
    (tmp_path / "tests" / "sub").mkdir(parents=True)
    (tmp_path / "tests" / "test_top.py").write_text("top\n", encoding="utf-8")
    (tmp_path / "tests" / "sub" / "test_deep.py").write_text(
        "deep\n", encoding="utf-8"
    )
    files = project.test_files(tmp_path)
    names = [path.name for path, _ in files]
    assert names == ["test_deep.py", "test_top.py"]
    assert [src.strip() for _, src in files] == ["deep", "top"]
    assert project.test_files(tmp_path / "nowhere") == []
