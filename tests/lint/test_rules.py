"""Each PL rule must flag its bad fixture and pass its good fixture."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import lint_paths

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


def run_rule(code: str, fixture: Path):
    return lint_paths([fixture], select=[code], project_root=REPO_ROOT)


BAD_FIXTURES = {
    "PL001": FIXTURES / "pl001_bad.py",
    "PL002": FIXTURES / "pl002_bad.py",
    "PL003": FIXTURES / "pl003_bad.py",
    "PL004": FIXTURES / "core" / "pl004_bad.py",
    "PL005": FIXTURES / "compressors" / "pl005_bad.py",
}

GOOD_FIXTURES = {
    "PL001": FIXTURES / "pl001_good.py",
    "PL002": FIXTURES / "pl002_good.py",
    "PL003": FIXTURES / "pl003_good.py",
    "PL004": FIXTURES / "core" / "pl004_good.py",
    "PL005": FIXTURES / "compressors" / "pl005_good.py",
}


@pytest.mark.parametrize("code", sorted(BAD_FIXTURES))
def test_bad_fixture_is_flagged(code):
    findings = run_rule(code, BAD_FIXTURES[code])
    assert findings, f"{code} found nothing in its bad fixture"
    assert all(f.rule == code for f in findings)


@pytest.mark.parametrize("code", sorted(GOOD_FIXTURES))
def test_good_fixture_is_clean(code):
    findings = run_rule(code, GOOD_FIXTURES[code])
    assert findings == [], [f.message for f in findings]


class TestPL001:
    def test_flags_every_bad_pattern(self):
        findings = run_rule("PL001", BAD_FIXTURES["PL001"])
        assert len(findings) == 4
        messages = " | ".join(f.message for f in findings)
        assert "swallows exceptions" in messages
        assert "untyped RuntimeError" in messages
        assert "decode path" in messages

    def test_bare_except_counts_as_broad(self):
        findings = run_rule("PL001", BAD_FIXTURES["PL001"])
        assert any("<bare>" in f.message for f in findings)


class TestPL002:
    def test_flags_every_bad_pattern(self):
        findings = run_rule("PL002", BAD_FIXTURES["PL002"])
        assert len(findings) == 4
        messages = " | ".join(f.message for f in findings)
        assert "invalid struct format" in messages
        assert "packs 3 value(s)" in messages
        assert "needs 12 byte(s)" in messages
        assert "exceeds frame constant TRAILER_BYTES = 16" in messages


class TestPL003:
    def test_flags_every_bad_pattern(self):
        findings = run_rule("PL003", BAD_FIXTURES["PL003"])
        assert len(findings) == 4
        segments = [f for f in findings if "SharedMemory segment" in f.message]
        views = [f for f in findings if "memoryview" in f.message]
        assert len(segments) == 2
        assert len(views) == 2


class TestPL004:
    def test_flags_every_bad_pattern(self):
        findings = run_rule("PL004", BAD_FIXTURES["PL004"])
        assert len(findings) == 3
        messages = " | ".join(f.message for f in findings)
        assert "dynamic-width slice" in messages
        assert "no preceding length check" in messages
        assert "no preceding bounds check" in messages

    def test_scope_is_storage_and_core_only(self, tmp_path):
        # The same bad source outside storage// core/ paths is ignored.
        outside = tmp_path / "elsewhere.py"
        outside.write_text(BAD_FIXTURES["PL004"].read_text())
        assert run_rule("PL004", outside) == []


class TestPL005:
    def test_flags_unregistered_codec(self):
        findings = run_rule("PL005", BAD_FIXTURES["PL005"])
        assert len(findings) == 1
        assert "OrphanCodec" in findings[0].message
        assert "register_codec" in findings[0].message

    def test_flags_untested_codec_without_sweep(self, tmp_path):
        # A synthetic project whose tests never exercise the codec.
        pkg = tmp_path / "src" / "compressors"
        pkg.mkdir(parents=True)
        (pkg / "thing.py").write_text(
            GOOD_FIXTURES["PL005"].read_text()
        )
        tests = tmp_path / "tests"
        tests.mkdir()
        (tests / "test_other.py").write_text("def test_nothing():\n    pass\n")
        findings = lint_paths(
            [pkg], select=["PL005"], project_root=tmp_path
        )
        assert findings, "expected untested-codec findings"
        assert all(
            "no round-trip test" in f.message for f in findings
        )

    def test_sweep_covers_all_codecs(self, tmp_path):
        pkg = tmp_path / "src" / "compressors"
        pkg.mkdir(parents=True)
        (pkg / "thing.py").write_text(GOOD_FIXTURES["PL005"].read_text())
        tests = tmp_path / "tests"
        tests.mkdir()
        (tests / "test_sweep.py").write_text(
            "from repro.compressors import available_codecs, get_codec\n"
            "def test_roundtrip():\n"
            "    for name in available_codecs():\n"
            "        c = get_codec(name)\n"
            "        assert c.decompress(c.compress(b'x')) == b'x'\n"
        )
        assert lint_paths([pkg], select=["PL005"], project_root=tmp_path) == []
