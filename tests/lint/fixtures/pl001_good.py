"""PL001 fixtures that must lint clean (exception discipline)."""

from repro.compressors.base import CodecError, CorruptionError, TruncationError


class ManifestError(CorruptionError):
    """Local taxonomy member: subclasses count as typed."""


def wrap_typed(record):
    try:
        return record[0]
    except CodecError:
        raise
    except Exception as exc:
        raise CorruptionError(f"undecodable record: {exc}") from exc


def wrap_local_subclass(record):
    try:
        return record[0]
    except Exception as exc:
        raise ManifestError("bad manifest") from exc


def reraise_bare(record):
    try:
        return record[0]
    except Exception:
        raise


def decode_window(record):
    # Narrow handler in a decode path that conditionally re-raises.
    try:
        return record[1:]
    except IndexError:
        if not record:
            raise TruncationError("empty record") from None
        raise


def intentional_swallow(sock):
    try:
        sock.close()
    except Exception:  # primacy-lint: disable=PL001 -- best-effort close
        pass
