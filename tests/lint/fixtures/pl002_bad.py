"""PL002 fixtures that MUST be flagged (struct-format consistency)."""

import struct

TRAILER_BYTES = 16


def bad_format():
    return struct.calcsize("<Qz")  # 'z' is not a struct code


def pack_count_mismatch(a, b):
    return struct.pack("<QI", a, b, 7)  # 2 fields, 3 values


def unpack_width_mismatch(trailer):
    return struct.unpack("<QI", trailer[:10])  # needs 12 bytes, slice has 10


def decode_trailer(trailer):
    if len(trailer) != TRAILER_BYTES:
        raise ValueError("bad trailer")
    magic = trailer[16:20]  # slice bound 20 beyond TRAILER_BYTES = 16
    return magic
