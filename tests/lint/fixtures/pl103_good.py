"""PL103 good fixture: encoder and decoder agree field for field."""

from repro.util.varint import decode_uvarint, encode_uvarint

MAGIC = b"TSTF"


def encode_record(name: bytes, payload: bytes) -> bytes:
    out = bytearray()
    out += MAGIC
    out += encode_uvarint(len(name))
    out += name
    out.append(1)
    out += payload
    return bytes(out)


def decode_record(data):
    if data[:4] != MAGIC:
        raise ValueError("bad magic")
    pos = 4
    n, pos = decode_uvarint(data, pos)
    name = bytes(data[pos : pos + n])
    pos += n
    flag = data[pos]
    return name, flag, bytes(data[pos + 1 :])


def encode_header(count: int, tail: bytes) -> bytes:
    out = bytearray()
    out += encode_uvarint(count)
    out += encode_uvarint(len(tail))
    out += tail
    return bytes(out)


def parse_header(data):
    # A header parser may leave the trailing payload to its caller.
    count, pos = decode_uvarint(data, 0)
    tail_len, pos = decode_uvarint(data, pos)
    return count, tail_len, pos
