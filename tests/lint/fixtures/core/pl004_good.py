"""PL004 fixtures that must lint clean (bounds discipline)."""


class TruncationError(ValueError):
    pass


def decode_record(record: bytes, pos: int, length: int):
    payload = record[pos : pos + length]
    if len(payload) != length:
        raise TruncationError("payload truncated")
    return payload


def decode_header(data: bytes):
    if len(data) < 6:
        raise TruncationError("header too short")
    magic = data[:4]
    version = data[4]
    return magic, version


def read_flags(record: bytes):
    if not record:
        raise TruncationError("empty record")
    return record[0]


def decode_checksum(record: bytes, pos: int, n: int):
    if len(record) - pos < n:
        raise TruncationError("checksum truncated")
    return record[pos : pos + n]


def decode_suppressed(record: bytes, pos: int, n: int):
    return record[pos : pos + n]  # primacy-lint: disable=PL004 -- caller validated


def encode_record(buf: bytes):
    # Encoder-side helpers are out of scope: not a decode-path name.
    return buf[1:]
