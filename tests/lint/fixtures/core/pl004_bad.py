"""PL004 fixtures that MUST be flagged (bounds discipline).

Lives under a ``core/`` path segment so the rule's storage//core/ scope
applies to it.
"""


def decode_record(record: bytes, pos: int, length: int):
    payload = record[pos : pos + length]  # dynamic width, never checked
    return payload


def decode_header(data: bytes):
    magic = data[:4]  # literal slice with no preceding length guard
    return magic


def read_flags(record: bytes):
    return record[0]  # direct index with no preceding bounds check
