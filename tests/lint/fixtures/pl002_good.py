"""PL002 fixtures that must lint clean (struct-format consistency)."""

import struct

TRAILER_BYTES = 16


def pack_trailer(footer_len, crc):
    return struct.pack("<QI", footer_len, crc) + b"PRIE"


def unpack_trailer(trailer):
    if len(trailer) != TRAILER_BYTES:
        raise ValueError("bad trailer")
    footer_len, crc = struct.unpack("<QI", trailer[:12])
    magic = trailer[12:16]
    return footer_len, crc, magic


def repeated_fields(raw):
    return struct.unpack("<4H", raw[:8])


def padded_and_strings(tag, blob):
    return struct.pack("<B3x4s", tag, blob)
