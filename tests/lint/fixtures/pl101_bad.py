"""PL101 bad fixture: resources leak on at least one CFG path."""

from multiprocessing.shared_memory import SharedMemory


def leak_on_except_return(data):
    view = memoryview(data)
    try:
        n = int(view[0])
    except IndexError:
        return None  # leak: the except path never releases view
    view.release()
    return n


def leak_on_early_return(name, fast):
    shm = SharedMemory(name=name)
    if fast:
        return 0  # leak: early return skips close/unlink
    shm.close()
    shm.unlink()
    return 1


def leak_on_raise_between(data):
    view = memoryview(data)
    if len(view) < 8:
        raise ValueError("short buffer")  # leak: raises past the release
    total = int(view[0])
    view.release()
    return total


def leak_on_rebind(first, second):
    view = memoryview(first)
    view = memoryview(second)  # leak: first view dropped unreleased
    result = bytes(view[:4])
    view.release()
    return result


def leak_on_loop_continue(names):
    total = 0
    for name in names:
        shm = SharedMemory(name=name)
        if shm.size == 0:
            continue  # leak: empty segments are never closed
        total += shm.size
        shm.close()
    return total
