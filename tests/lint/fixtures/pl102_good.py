"""PL102 good fixture: at-fork reinitializers and pid-guarded handles."""

import os
import threading
from multiprocessing import Process

_CACHE = {}
_CACHE_LOCK = threading.Lock()
_SCRATCH = threading.local()  # per-thread state is fork-safe


def _reinit_after_fork():
    global _CACHE_LOCK
    _CACHE_LOCK = threading.Lock()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_reinit_after_fork)


def _worker_entry(key):
    return lookup(key)


def lookup(key):
    with _CACHE_LOCK:
        return _CACHE.get(key)


def start_worker(key):
    proc = Process(target=_worker_entry, args=(key,))
    proc.start()
    return proc


class Pool:
    def __init__(self):
        self._task_q = None
        self._pid = None

    def _reset_after_fork(self):
        self._task_q = None
        self._pid = None

    def _ensure_pool(self):
        if self._pid is not None and self._pid != os.getpid():
            self._reset_after_fork()

    def submit(self, item):
        self._ensure_pool()
        self._task_q.put(item)

    def submit_inline_guard(self, item):
        if self._pid != os.getpid():
            self._reset_after_fork()
        self._task_q.put(item)

    def _drain_one(self):
        # Private helper: the public callers hold the guard contract.
        return self._task_q.get()
