"""PL003 fixtures that MUST be flagged (SharedMemory/memoryview lifecycle)."""

from multiprocessing.shared_memory import SharedMemory


def leak_on_exception(payload):
    shm = SharedMemory(create=True, size=len(payload))
    shm.buf[: len(payload)] = payload  # a raise here leaks the segment
    shm.close()
    shm.unlink()


def leak_attached_segment(name):
    shm = SharedMemory(name=name)
    return bytes(shm.buf[:16])  # attached segment never closed


def leak_memoryview(shm):
    view = memoryview(shm.buf)
    return view[0]  # view pins the mapping and is never released


def leak_buf_alias(shm):
    buf = shm.buf
    buf[0] = 1  # .buf alias kept without release()
