"""PL001 fixtures that MUST be flagged (exception discipline).

Not imported by tests -- parsed by the linter only.
"""


def swallow_everything(data):
    try:
        return data[0]
    except Exception:  # line 10: broad swallow, no re-raise
        return None


def wrap_untyped(data):
    try:
        return data[0]
    except Exception as exc:  # line 17: re-raises an untyped RuntimeError
        raise RuntimeError(f"boom: {exc}") from exc


def bare_swallow(data):
    try:
        return data[0]
    except:  # noqa: E722  # line 24: bare except, swallowed
        return None


def decode_record(record):
    try:
        return record[1:]
    except IndexError:  # line 31: narrow swallow inside a decode path
        return b""
