"""PL102 bad fixture: fork-unsafe locks and unguarded pool handles."""

import os
import threading
from multiprocessing import Process

_CACHE = {}
_CACHE_LOCK = threading.Lock()  # module scope, no at-fork reinitializer


def _worker_entry(key):
    return lookup(key)


def lookup(key):
    with _CACHE_LOCK:  # child deadlocks if parent forked mid-hold
        return _CACHE.get(key)


def start_worker(key):
    proc = Process(target=_worker_entry, args=(key,))
    proc.start()
    return proc


class Pool:
    def __init__(self):
        self._task_q = None
        self._pid = None

    def _reset_after_fork(self):
        self._task_q = None
        self._pid = None

    def submit(self, item):
        self._task_q.put(item)  # no pid check: parent's queue after fork

    def submit_sometimes_guarded(self, item, fast):
        if fast:
            if self._pid != os.getpid():
                self._reset_after_fork()
        self._task_q.put(item)  # guard only on the fast path
