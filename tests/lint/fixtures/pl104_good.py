"""PL104 good fixture: the fast path keeps its reference twin.

The equivalence test naming both ParityCodec and the reference backend
lives in ``tests/lint/test_deep_rules.py``.
"""


def _batch_encode(data: bytes) -> bytes:
    return bytes(data)


def _reference_encode(data: bytes) -> bytes:
    # Frozen scalar oracle the batch kernel is tested against.
    return bytes(bytearray(data))


_BACKENDS = {"batch": _batch_encode, "reference": _reference_encode}


class ParityCodec:
    def __init__(self, kernels: str = "batch") -> None:
        self.kernels = kernels
        self._encode = _BACKENDS[kernels]

    def compress(self, data: bytes) -> bytes:
        return self._encode(data)
