"""PL103 bad fixture: decoders that disagree with their encoders."""

from repro.util.varint import decode_uvarint, encode_uvarint

MAGIC = b"TSTF"


def encode_record(name: bytes, payload: bytes) -> bytes:
    out = bytearray()
    out += MAGIC
    out += encode_uvarint(len(name))  # length is a uvarint
    out += name
    out.append(1)
    out += payload
    return bytes(out)


def decode_record(data):
    if data[:4] != MAGIC:
        raise ValueError("bad magic")
    n = data[4]  # asymmetry: reads the length as one byte
    pos = 5
    name = bytes(data[pos : pos + n])
    pos += n
    flag = data[pos]
    return name, flag, bytes(data[pos + 1 :])


def encode_frame(count: int, crc: int) -> bytes:
    out = bytearray()
    out += encode_uvarint(count)
    out += crc.to_bytes(4, "little")
    out.append(7)  # trailing version byte
    return bytes(out)


def decode_frame(data):
    count, pos = decode_uvarint(data, 0)
    crc = int.from_bytes(data[pos : pos + 4], "little")
    return count, crc  # asymmetry: the version byte is never consumed
