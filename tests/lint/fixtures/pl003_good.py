"""PL003 fixtures that must lint clean (SharedMemory/memoryview lifecycle)."""

from multiprocessing.shared_memory import SharedMemory


def close_in_finally(payload):
    shm = SharedMemory(create=True, size=len(payload))
    try:
        shm.buf[: len(payload)] = payload
        return shm.name
    finally:
        shm.close()
        shm.unlink()


def transfer_to_registry(pool, length):
    shm = SharedMemory(create=True, size=length)
    pool.append(shm)  # ownership transferred to the pool
    return shm


class SegmentOwner:
    def adopt(self, length):
        shm = SharedMemory(create=True, size=length)
        self.segment = shm  # ownership transferred to the instance
        return self.segment


def release_in_finally(shm):
    view = memoryview(shm.buf)
    try:
        return bytes(view[:16])
    finally:
        view.release()


def suppressed_leak(name):
    shm = SharedMemory(name=name)  # primacy-lint: disable=PL003,PL101 -- closed by caller
    return shm.buf
