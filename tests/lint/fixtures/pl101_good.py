"""PL101 good fixture: every path provably releases or transfers."""

from multiprocessing.shared_memory import SharedMemory


def release_in_finally(data):
    view = memoryview(data)
    try:
        return int(view[0])
    except IndexError:
        return None
    finally:
        view.release()  # runs on every path, exception edge included


def managed_by_with(name):
    with SharedMemory(name=name) as shm:
        return bytes(shm.buf[:8])


def ownership_transfer(registry, name):
    shm = SharedMemory(name=name)
    registry.append(shm)  # the registry owns it now
    return shm.size


def returned_to_caller(data):
    view = memoryview(data)
    return view  # caller owns it


def derivation_keeps_obligation(data):
    view = memoryview(data)
    view = view.cast("B")  # same resource, narrowed -- not a leak
    n = view.nbytes
    view.release()
    return n


def released_on_both_branches(data, wide):
    view = memoryview(data)
    if wide:
        n = view.nbytes
        view.release()
    else:
        n = 0
        view.release()
    return n


def nested_try_with_reraise(data):
    view = memoryview(data)
    try:
        try:
            return int(view[0])
        except IndexError:
            raise ValueError("empty buffer") from None
    finally:
        view.release()
