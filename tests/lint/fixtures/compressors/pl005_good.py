"""PL005 fixtures that must lint clean (codec-registry completeness)."""

from repro.compressors.base import Codec, register_codec


@register_codec
class DecoratedCodec(Codec):
    """Registered through the decorator."""

    name = "fixture-decorated"

    def compress(self, data: bytes) -> bytes:
        return data

    def decompress(self, data: bytes) -> bytes:
        return data


class CallRegisteredCodec(Codec):
    """Registered through a module-level call."""

    name = "fixture-call-registered"

    def compress(self, data: bytes) -> bytes:
        return data

    def decompress(self, data: bytes) -> bytes:
        return data


register_codec(CallRegisteredCodec)


class _PrivateHelperCodec(Codec):
    """Private helpers are exempt."""

    name = "fixture-private"

    def compress(self, data: bytes) -> bytes:
        return data

    def decompress(self, data: bytes) -> bytes:
        return data


class StillAbstractCodec(Codec):
    """No registry identity yet: keeps the sentinel name."""

    name = "abstract"
