"""PL005 fixture that MUST be flagged (codec-registry completeness)."""

from repro.compressors.base import Codec


class OrphanCodec(Codec):
    """A codec that nobody registered: unreachable from the registry."""

    name = "orphan"

    def compress(self, data: bytes) -> bytes:
        return data

    def decompress(self, data: bytes) -> bytes:
        return data
