"""PL104 bad fixture: a kernels= fast path with no frozen twin.

The module never pairs the knob with a fallback backend, so the fast
path has no oracle to be checked against.
"""

_BACKENDS = {"batch": lambda data: bytes(data)}


class TurboCodec:
    def __init__(self, kernels: str = "batch") -> None:
        self.kernels = kernels
        self._encode = _BACKENDS[kernels]

    def compress(self, data: bytes) -> bytes:
        return self._encode(data)
