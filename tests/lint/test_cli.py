"""End-to-end ``primacy lint`` CLI behaviour, including the repo-clean gate."""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main
from repro.lint import Severity, lint_paths

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"


def test_repo_source_tree_lints_clean():
    """The acceptance gate: ``primacy lint src/`` exits 0 on this repo."""
    assert main(["lint", str(SRC)]) == 0


def test_repo_source_tree_has_no_error_findings():
    findings = lint_paths([SRC], project_root=REPO_ROOT)
    errors = [f for f in findings if f.severity is Severity.ERROR]
    assert errors == [], [f"{f.path}:{f.line} {f.rule} {f.message}" for f in errors]


def test_bad_fixture_exits_nonzero(capsys):
    rc = main(["lint", str(FIXTURES / "pl001_bad.py"), "--select", "PL001"])
    assert rc == 1
    out = capsys.readouterr().out
    assert "PL001" in out
    assert "error(s)" in out


def test_json_format(capsys):
    rc = main(
        [
            "lint",
            str(FIXTURES / "pl001_bad.py"),
            "--select",
            "PL001",
            "--format",
            "json",
        ]
    )
    assert rc == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["errors"] == 4
    assert all(f["rule"] == "PL001" for f in payload["findings"])


def test_select_excludes_other_rules(capsys):
    rc = main(["lint", str(FIXTURES / "pl001_bad.py"), "--select", "PL002"])
    assert rc == 0


def test_ignore_drops_rule(capsys):
    rc = main(["lint", str(FIXTURES / "pl001_bad.py"), "--ignore", "PL001"])
    assert rc == 0


def test_unknown_rule_exits_2(capsys):
    rc = main(["lint", str(FIXTURES / "pl001_bad.py"), "--select", "PL999"])
    assert rc == 2
    assert "lint error" in capsys.readouterr().err


def test_baseline_round_trip(tmp_path, capsys):
    fixture = str(FIXTURES / "pl001_bad.py")
    baseline = tmp_path / "baseline.json"

    rc = main(["lint", fixture, "--select", "PL001", "--write-baseline", str(baseline)])
    assert rc == 0
    assert "fingerprint(s)" in capsys.readouterr().out
    assert baseline.exists()

    # With the baseline applied, the same findings demote to warnings: exit 0.
    rc = main(["lint", fixture, "--select", "PL001", "--baseline", str(baseline)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "0 error(s), 4 warning(s)" in out


def test_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("PL001", "PL002", "PL003", "PL004", "PL005"):
        assert code in out
    assert "PL101" not in out


def test_list_rules_deep_includes_deep_tier(capsys):
    assert main(["lint", "--list-rules", "--deep"]) == 0
    out = capsys.readouterr().out
    for code in ("PL101", "PL102", "PL103", "PL104"):
        assert code in out


def test_deep_gate_on_repo_src(monkeypatch):
    """The acceptance gate: ``primacy lint --deep src`` exits 0."""
    monkeypatch.chdir(REPO_ROOT)
    assert main(["lint", "--deep", "src"]) == 0


def test_deep_flags_bad_fixture(capsys, monkeypatch):
    monkeypatch.chdir(REPO_ROOT)
    rc = main(
        [
            "lint",
            "--deep",
            str(FIXTURES / "pl101_bad.py"),
            "--select",
            "PL101",
        ]
    )
    assert rc == 1
    assert "PL101" in capsys.readouterr().out


def test_deep_cache_reports_stats(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(REPO_ROOT)
    cache = tmp_path / "cache.json"
    # pl104_good is clean under the shallow tier too (pl101_good
    # deliberately trips the cruder PL003 heuristic).
    fixture = str(FIXTURES / "pl104_good.py")

    assert main(["lint", "--deep", fixture, "--cache", str(cache)]) == 0
    assert "project phase miss" in capsys.readouterr().err

    assert main(["lint", "--deep", fixture, "--cache", str(cache)]) == 0
    err = capsys.readouterr().err
    assert "1 file hit(s), 0 miss(es), project phase hit" in err


def test_explain_prints_rationale_and_examples(capsys, monkeypatch):
    monkeypatch.chdir(REPO_ROOT)
    assert main(["lint", "--explain", "PL101"]) == 0
    out = capsys.readouterr().out
    assert "PL101" in out
    assert "bad" in out.lower()
    assert "good" in out.lower()
    # The examples come from the fixture files when they exist.
    assert "leak_on_except_return" in out


def test_explain_shallow_rule(capsys):
    assert main(["lint", "--explain", "PL001"]) == 0
    assert "PL001" in capsys.readouterr().out


def test_explain_unknown_rule_exits_2(capsys):
    assert main(["lint", "--explain", "PL999"]) == 2
    assert "PL999" in capsys.readouterr().err
