#!/usr/bin/env python
"""Plug a custom compressor behind the PRIMACY preconditioner.

PRIMACY is a *preconditioner*: any byte-level codec can serve as the
"solver" behind it (the paper demonstrates zlib, lzo, and bzlib2).  This
example implements a tiny custom codec -- run-length + order-0 Huffman,
a reasonable 20-line entropy coder -- registers it, and runs PRIMACY on
top of it, showing the preconditioner's gain is not specific to any one
backend.

Run:  python examples/custom_backend.py
"""

from __future__ import annotations

from repro.compressors import Codec, get_codec, register_codec
from repro.compressors.huffman import decode_symbol_block, encode_symbol_block
from repro.compressors.rle import RleCodec
from repro.core import PrimacyCompressor, PrimacyConfig
from repro.datasets import generate_bytes


@register_codec
class RleHuffmanCodec(Codec):
    """Byte RLE followed by order-0 Huffman: simple but honest."""

    name = "rle-huffman"

    def __init__(self) -> None:
        self._rle = RleCodec()

    def compress(self, data: bytes) -> bytes:
        import numpy as np

        rle = self._rle.compress(data)
        return encode_symbol_block(np.frombuffer(rle, dtype=np.uint8), 256)

    def decompress(self, data: bytes) -> bytes:
        symbols, _ = decode_symbol_block(data)
        import numpy as np

        return self._rle.decompress(symbols.astype(np.uint8).tobytes())


def main() -> None:
    data = generate_bytes("num_plasma", 32768, seed=9)
    print(f"dataset: num_plasma, {len(data):,} bytes")
    print()

    custom = get_codec("rle-huffman")
    vanilla_size = len(custom.compress(data))
    assert custom.decompress(custom.compress(data)) == data

    primacy = PrimacyCompressor(
        PrimacyConfig(codec="rle-huffman", chunk_bytes=256 * 1024)
    )
    out, stats = primacy.compress(data)
    assert primacy.decompress(out) == data

    print(f"vanilla {custom.name}:        CR = {len(data) / vanilla_size:.3f}")
    print(f"PRIMACY + {custom.name}:      CR = {stats.compression_ratio:.3f}")
    print()
    print("The ID mapping concentrated the exponent bytes into runs of")
    print("low values -- exactly what an RLE-based backend exploits.")


if __name__ == "__main__":
    main()
