#!/usr/bin/env python
"""Quickstart: compress scientific float data with PRIMACY.

Generates a hard-to-compress synthetic dataset, compresses it with the
zlib-analogue baseline and with PRIMACY, verifies losslessness, and
prints the comparison the paper's Table III makes.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import time

from repro import PrimacyCodec, available_codecs, get_codec
from repro.datasets import generate_bytes


def measure(codec, data: bytes) -> tuple[float, float, float]:
    """(compression ratio, compress MB/s, decompress MB/s)."""
    t0 = time.perf_counter()
    compressed = codec.compress(data)
    t_c = time.perf_counter() - t0
    t0 = time.perf_counter()
    restored = codec.decompress(compressed)
    t_d = time.perf_counter() - t0
    assert restored == data, "lossless round trip violated!"
    mb = len(data) / 1e6
    return len(data) / len(compressed), mb / t_c, mb / t_d


def main() -> None:
    print("Registered codecs:", ", ".join(available_codecs()))
    print()

    # A GTS-like fusion checkpoint: random mantissas, narrow exponent range.
    data = generate_bytes("gts_chkp_zeon", n_values=32768, seed=42)
    print(f"dataset: gts_chkp_zeon, {len(data):,} bytes of float64")
    print()

    baseline = get_codec("pyzlib")
    cr, ctp, dtp = measure(baseline, data)
    print(f"vanilla zlib-analogue:  CR={cr:5.3f}  CTP={ctp:6.2f} MB/s  DTP={dtp:6.2f} MB/s")

    primacy = PrimacyCodec(chunk_bytes=256 * 1024)
    cr_p, ctp_p, dtp_p = measure(primacy, data)
    print(f"PRIMACY + zlib:         CR={cr_p:5.3f}  CTP={ctp_p:6.2f} MB/s  DTP={dtp_p:6.2f} MB/s")
    print()

    stats = primacy.last_stats
    print("PRIMACY run statistics (the performance model's inputs):")
    print(f"  alpha1 (ID-mapped fraction):        {stats.alpha1:.3f}")
    print(f"  alpha2 (compressible mantissa):     {stats.alpha2:.3f}")
    print(f"  sigma_ho (high-order compressed):   {stats.sigma_ho:.3f}")
    print(f"  sigma_lo (low-order compressed):    {stats.sigma_lo:.3f}")
    print(f"  index metadata:                     {stats.metadata_bytes} bytes")
    print()
    print(f"PRIMACY improved CR by {100 * (cr_p / cr - 1):.1f}% and "
          f"compression throughput by {ctp_p / ctp:.1f}x over vanilla zlib.")


if __name__ == "__main__":
    main()
