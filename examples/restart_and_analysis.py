#!/usr/bin/env python
"""Checkpoint, restart, and post-hoc analysis with partial reads.

The workflow the paper motivates, end to end:

1. a toy "simulation" evolves two fields and checkpoints every few steps
   into one PRIMACY-compressed checkpoint file;
2. a "restart" reads the latest step back and resumes bit-exactly;
3. an "analysis" job later extracts a small slice of one variable from
   an old step -- decompressing only the chunks that cover it, which is
   what the seekable PRIF layout is for.

Run:  python examples/restart_and_analysis.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

from repro.checkpoint import CheckpointReader, CheckpointWriter
from repro.core import PrimacyConfig

GRID = (96, 96)
STEPS = 4


def evolve(phi: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """One fake diffusion + forcing step."""
    lap = (
        np.roll(phi, 1, 0) + np.roll(phi, -1, 0)
        + np.roll(phi, 1, 1) + np.roll(phi, -1, 1)
        - 4 * phi
    )
    return phi + 0.1 * lap + 1e-3 * rng.standard_normal(phi.shape)


def main() -> None:
    rng = np.random.default_rng(0)
    path = Path(tempfile.mkdtemp()) / "simulation.prck"

    # --- simulation with in-situ compressed checkpoints -------------------
    phi = np.exp(-((np.indices(GRID) - 48) ** 2).sum(axis=0) / 200.0) * 300
    velocity = rng.normal(0, 1, GRID)
    t0 = time.perf_counter()
    raw_bytes = 0
    with CheckpointWriter(path, PrimacyConfig(chunk_bytes=64 * 1024)) as ckpt:
        for step in range(STEPS):
            phi = evolve(phi, rng)
            velocity = evolve(velocity, rng)
            ckpt.write_step(step, {"phi": phi, "velocity": velocity})
            raw_bytes += phi.nbytes + velocity.nbytes
    wall = time.perf_counter() - t0
    stored = path.stat().st_size
    print(f"simulated {STEPS} steps on a {GRID[0]}x{GRID[1]} grid")
    print(f"checkpointed {raw_bytes / 1e6:.2f} MB raw -> "
          f"{stored / 1e6:.2f} MB on disk "
          f"(CR = {raw_bytes / stored:.2f}) in {wall:.2f}s")
    print()

    # --- restart: load the last step, verify bit-exactness ----------------
    with CheckpointReader(path) as reader:
        last = reader.steps()[-1]
        phi_restored = reader.read(last, "phi")
        assert phi_restored.tobytes() == phi.tobytes(), "restart corrupted!"
        print(f"restart from step {last}: phi restored bit-exactly "
              f"({phi_restored.shape}, {phi_restored.dtype})")

        # --- analysis: a tiny slice from an old step ----------------------
        meta = reader.meta(0, "velocity")
        row = 48
        slice_vals = reader.read_range(
            0, "velocity", row * GRID[1], GRID[1]
        )
        print(f"analysis: read row {row} of step-0 velocity "
              f"({slice_vals.size} of {meta.n_values} values) "
              f"without decompressing the rest")
        print(f"          row mean = {slice_vals.mean():+.4f}")


if __name__ == "__main__":
    main()
