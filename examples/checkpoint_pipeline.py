#!/usr/bin/env python
"""Checkpoint/restart through a staging I/O hierarchy (the paper's Fig 4).

Simulates the paper's motivating scenario: a simulation on 8 compute
nodes periodically checkpoints through one I/O node to disk, then
restarts (reads everything back).  Four compute-node strategies are
compared on end-to-end throughput: no compression, vanilla zlib, vanilla
lzo, and PRIMACY.

The machine is a Jaguar-XK6-like environment scaled to this host's codec
speeds, so the compute/communication balance -- which decides who wins --
matches the paper's testbed.

Run:  python examples/checkpoint_pipeline.py
"""

from __future__ import annotations

from repro.compressors import get_codec
from repro.core import PrimacyConfig
from repro.datasets import generate_bytes
from repro.iosim import (
    CodecStrategy,
    NullStrategy,
    PrimacyStrategy,
    StagingSimulator,
    jaguar_like_environment,
    measure_reference_decompression,
    measure_reference_throughput,
)
from repro.iosim.environment import PAPER_ZLIB_CTP_MBPS, PAPER_ZLIB_DTP_MBPS

N_VALUES = 65536  # 512 KiB checkpoint per step
N_STEPS = 3


def main() -> None:
    checkpoint = generate_bytes("flash_velx", N_VALUES, seed=11)
    per_node = checkpoint[: len(checkpoint) // 8]

    # Scale the machine so it relates to our codecs the way Jaguar
    # related to C zlib (separately per direction; see DESIGN.md).
    scale = measure_reference_throughput(
        get_codec("pyzlib"), per_node
    ) / (PAPER_ZLIB_CTP_MBPS * 1e6)
    read_scale = measure_reference_decompression(
        get_codec("pyzlib"), per_node
    ) / (PAPER_ZLIB_DTP_MBPS * 1e6)
    env = jaguar_like_environment(scale, read_scale=read_scale)
    sim = StagingSimulator(env)
    print(f"machine: rho={env.rho}, theta_w={env.network_write_bps / 1e6:.2f} "
          f"scaled MB/s, mu_w={env.disk_write_bps / 1e6:.2f} scaled MB/s")
    print(f"checkpoint: flash_velx, {len(checkpoint):,} bytes x {N_STEPS} steps")
    print()

    strategies = {
        "no compression": NullStrategy(),
        "vanilla zlib": CodecStrategy(get_codec("pyzlib")),
        "vanilla lzo": CodecStrategy(get_codec("pylzo")),
        "PRIMACY": PrimacyStrategy(
            PrimacyConfig(chunk_bytes=len(checkpoint) // 8)
        ),
    }

    print(f"{'strategy':16s} {'write MB/s':>11s} {'read MB/s':>10s} "
          f"{'bytes moved':>12s} {'ckpt time':>10s}")
    for name, strategy in strategies.items():
        write_t = read_t = moved = 0.0
        for _ in range(N_STEPS):
            w = sim.simulate_write(checkpoint, strategy)
            r = sim.simulate_read(checkpoint, strategy)
            write_t += w.t_total
            read_t += r.t_total
            moved += w.payload_bytes
        n = N_STEPS * (len(checkpoint) - len(checkpoint) % 64)
        print(f"{name:16s} {n / write_t / 1e6:11.2f} {n / read_t / 1e6:10.2f} "
              f"{moved / 1e6:10.1f}MB {write_t:9.2f}s")

    print()
    print("PRIMACY hides its compression cost inside the I/O pipeline and")
    print("still shrinks the checkpoints -- vanilla compression cannot do both.")

    # --- visualize one PRIMACY write step ---------------------------------
    from repro.iosim import timeline_from_result

    result = sim.simulate_write(checkpoint, strategies["PRIMACY"])
    print()
    print("one PRIMACY write step (parallel compute, then network, then disk):")
    print(timeline_from_result(result).render(width=60))


if __name__ == "__main__":
    main()
