#!/usr/bin/env python
"""Reproduce the paper's data analysis (Figures 1 and 3) on any dataset.

Shows *why* PRIMACY's 2/6 byte split works: the sign/exponent bit
positions are highly regular while mantissa bits are coin flips (Fig 1),
and the 2-byte exponent sequences concentrate on a tiny subset of the
65,536 possibilities while mantissa pairs spread thin (Fig 3).

Run:  python examples/dataset_analysis.py [dataset ...]
"""

from __future__ import annotations

import sys

from repro.analysis import (
    bit_probability_profile,
    byte_sequence_frequencies,
    repeatability_gain,
)
from repro.datasets import FIGURE1_DATASETS, dataset_names, generate


def ascii_plot(probs, width: int = 64) -> str:
    """One-line ASCII rendition of the Fig-1 curve (p per bit position)."""
    glyphs = " .:-=+*#%@"
    out = []
    for p in probs:
        level = int((p - 0.5) * 2 * (len(glyphs) - 1) + 0.5)
        out.append(glyphs[max(0, min(level, len(glyphs) - 1))])
    return "".join(out[:width])


def analyze(name: str) -> None:
    values = generate(name, 16384, seed=1)
    prof = bit_probability_profile(values, name=name)
    exp, man = byte_sequence_frequencies(values, name=name)
    rep = repeatability_gain(values, name=name)

    print(f"=== {name} ===")
    print(f"  Fig 1 | bit regularity (sign..exponent..mantissa):")
    print(f"        |{ascii_plot(prof.probabilities)}|")
    print(f"        | exponent mean p = {prof.exponent_mean:.3f}, "
          f"mantissa mean p = {prof.mantissa_mean:.3f}")
    print(f"  Fig 3 | unique exponent byte-pairs: {exp.n_unique:6d} / 65536 "
          f"(top-100 hold {100 * exp.top_k_mass(100):.1f}% of the data)")
    print(f"        | unique mantissa byte-pairs: {man.n_unique:6d} / 65536 "
          f"(top-100 hold {100 * man.top_k_mass(100):.1f}%)")
    print(f"  II-C  | top-byte share {rep.top_byte_before:.3f} -> "
          f"{rep.top_byte_after:.3f} after ID mapping "
          f"({rep.top_byte_gain:+.3f})")
    print()


def main() -> None:
    names = sys.argv[1:] or list(FIGURE1_DATASETS)
    known = set(dataset_names())
    for name in names:
        if name not in known:
            print(f"unknown dataset {name!r}; choices: {', '.join(known)}")
            return
        analyze(name)


if __name__ == "__main__":
    main()
