#!/usr/bin/env python
"""Multi-core in-situ compression with the process-pool pipeline.

On a real machine the paper's parallelism comes from compute nodes; on
one host the same structure maps onto cores.  This example compresses a
large buffer serially and with a worker pool, verifies the outputs are
byte-identical (chunks are independent under the per-chunk index policy),
and reports the speedup.

Run:  python examples/parallel_insitu.py
"""

from __future__ import annotations

import os
import time

from repro.core import PrimacyCompressor, PrimacyConfig
from repro.datasets import generate_bytes
from repro.parallel import ParallelCompressor

N_VALUES = 262144  # 2 MB
CHUNK = 128 * 1024


def main() -> None:
    data = generate_bytes("flash_gamc", N_VALUES, seed=99)
    cfg = PrimacyConfig(chunk_bytes=CHUNK)
    print(f"dataset: flash_gamc, {len(data) / 1e6:.1f} MB, "
          f"{len(data) // CHUNK} chunks of {CHUNK // 1024} KiB")

    t0 = time.perf_counter()
    serial_out, serial_stats = PrimacyCompressor(cfg).compress(data)
    t_serial = time.perf_counter() - t0
    print(f"serial:   {t_serial:.2f}s  "
          f"({len(data) / 1e6 / t_serial:.2f} MB/s)  "
          f"CR={serial_stats.compression_ratio:.3f}")

    workers = min(os.cpu_count() or 1, 8)
    pool = ParallelCompressor(cfg, workers=workers)
    t0 = time.perf_counter()
    parallel_out, _ = pool.compress(data)
    t_parallel = time.perf_counter() - t0
    print(f"parallel: {t_parallel:.2f}s  "
          f"({len(data) / 1e6 / t_parallel:.2f} MB/s)  "
          f"with {workers} workers")

    assert parallel_out == serial_out, "outputs must be byte-identical"
    print(f"outputs byte-identical; speedup {t_serial / t_parallel:.2f}x")
    print("(pool startup costs amortize with larger buffers)")


if __name__ == "__main__":
    main()
