#!/usr/bin/env python
"""Use the Section-III model to plan a deployment (the paper's stated goal).

"We provide an analytical performance model that can enable prediction of
I/O performance on target systems both with and without applied
compression and additionally help application developers in choosing
particular configurations."

This example calibrates the model from one real PRIMACY run on this
host, then answers three planning questions for a hypothetical cluster:

1. Does compression pay off on *this* machine's balance at all?
2. How does the gain change with the compute-to-I/O-node ratio rho?
3. How fast would the network have to get before compression stops
   being worth it?

Run:  python examples/performance_model.py
"""

from __future__ import annotations

from dataclasses import replace

from repro.core import PrimacyCompressor, PrimacyConfig
from repro.datasets import generate_bytes
from repro.model import (
    calibrate_from_stats,
    predict_base_write,
    predict_compressed_write,
)


def main() -> None:
    # --- calibrate alpha/sigma/T_prec/T_comp from one measured run ---
    data = generate_bytes("obs_temp", 65536, seed=3)
    compressor = PrimacyCompressor(PrimacyConfig(chunk_bytes=128 * 1024))
    _, stats = compressor.compress(data)

    inputs = calibrate_from_stats(
        stats,
        chunk_bytes=3e6,  # the paper's 3 MB chunks
        rho=8,
        network_bps=1.2e6,  # a network balanced against our Python codecs
        disk_write_bps=1.2e6,
    )
    print("calibrated model inputs:")
    print(f"  alpha1={inputs.alpha1:.3f} alpha2={inputs.alpha2:.3f} "
          f"sigma_ho={inputs.sigma_ho:.3f} sigma_lo={inputs.sigma_lo:.3f}")
    print(f"  T_prec={inputs.preconditioner_bps / 1e6:.1f} MB/s "
          f"T_comp={inputs.compressor_bps / 1e6:.1f} MB/s")
    print()

    # --- question 1: does compression pay on this balance? ---
    base = predict_base_write(inputs).throughput_mbps(inputs)
    comp = predict_compressed_write(inputs).throughput_mbps(inputs)
    print(f"Q1: null={base:.2f} MB/s, PRIMACY={comp:.2f} MB/s "
          f"-> {'YES' if comp > base else 'NO'} "
          f"({100 * (comp / base - 1):+.0f}%)")
    print()

    # --- question 2: sensitivity to rho ---
    print("Q2: gain vs compute-to-I/O ratio")
    for rho in (2, 4, 8, 16, 32):
        inp = replace(inputs, rho=float(rho))
        b = predict_base_write(inp).throughput_mbps(inp)
        c = predict_compressed_write(inp).throughput_mbps(inp)
        bar = "#" * max(0, int(50 * (c / b - 1)))
        print(f"  rho={rho:3d}: {100 * (c / b - 1):+6.1f}%  {bar}")
    print()

    # --- question 3: network break-even ---
    print("Q3: how fast can the network get before compression stops paying?")
    for factor in (1, 2, 4, 8, 16, 32):
        inp = replace(
            inputs,
            network_bps=inputs.network_bps * factor,
            disk_write_bps=inputs.disk_write_bps * factor,
        )
        b = predict_base_write(inp).throughput_mbps(inp)
        c = predict_compressed_write(inp).throughput_mbps(inp)
        verdict = "compress" if c > b else "don't compress"
        print(f"  {factor:3d}x faster I/O: null={b:8.2f}, "
              f"PRIMACY={c:8.2f} -> {verdict}")


if __name__ == "__main__":
    main()
